// Experiment E2: offline algorithms (Duration Descending First Fit and
// Dual Coloring) against LB3 on random workloads, and against the exact
// OPT_total / brute-force optimum on tiny instances.
//
// Expected shape: measured ratios sit far below the proven worst-case
// factors (5 and 4); Dual Coloring's stripe overhead makes it looser than
// DDFF on benign loads even though its worst-case factor is better.
//
// Flags: --items <int> (default 400), --seeds <int> (default 8),
//        --tiny-seeds <int> (default 25).
#include <iostream>

#include "analysis/empirical.hpp"
#include "core/brute_force.hpp"
#include "core/opt_total.hpp"
#include "offline/ddff.hpp"
#include "offline/dual_coloring.hpp"
#include "telemetry/bench_report.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags =
      Flags::strictOrDie(argc, argv, {"items", "seeds", "tiny-seeds", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 400));
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 8));
  std::size_t tinySeeds = static_cast<std::size_t>(flags.getInt("tiny-seeds", 25));

  std::cout << "=== E2a: offline usage / LB3 on random workloads (" << items
            << " items x " << numSeeds << " seeds) ===\n";
  Table table({"mu", "sizes", "DDFF", "DualColoring", "FirstFit(arrival)"});
  auto dcUsage = [](const Instance& inst) {
    return dualColoring(inst).packing;
  };
  for (double mu : {2.0, 8.0, 32.0}) {
    for (SizeDist sizes : {SizeDist::kUniform, SizeDist::kSmallOnly}) {
      SummaryStats ddffStats, dcStats, ffStats;
      for (std::size_t s = 0; s < numSeeds; ++s) {
        WorkloadSpec spec;
        spec.numItems = items;
        spec.mu = mu;
        spec.sizes = sizes;
        Instance inst = generateWorkload(spec, 42 + s);
        ddffStats.add(
            evaluateOffline(inst, "DDFF", durationDescendingFirstFit).ratio);
        dcStats.add(evaluateOffline(inst, "DC", dcUsage).ratio);
        // Arrival-order First Fit with whole-interval checks, as an
        // offline baseline: just DDFF's packing rule without the sort.
        ffStats.add(evaluateOffline(inst, "FF", [](const Instance& in) {
                      // arrival order == instance order after stable sort
                      std::vector<Item> order = in.sortedByArrival();
                      std::vector<BinId> binOf(in.size(), kUnassigned);
                      std::vector<BinTimeline> bins;
                      for (const Item& r : order) {
                        std::size_t chosen = bins.size();
                        for (std::size_t b = 0; b < bins.size(); ++b) {
                          if (bins[b].fits(r)) {
                            chosen = b;
                            break;
                          }
                        }
                        if (chosen == bins.size()) bins.emplace_back();
                        bins[chosen].add(r);
                        binOf[r.id] = static_cast<BinId>(chosen);
                      }
                      return Packing(in, std::move(binOf));
                    }).ratio);
      }
      table.addRow({Table::num(mu, 0),
                    sizes == SizeDist::kUniform ? "uniform(0,1]" : "small(<=1/2)",
                    Table::num(ddffStats.mean(), 3), Table::num(dcStats.mean(), 3),
                    Table::num(ffStats.mean(), 3)});
    }
  }
  table.print(std::cout);

  std::cout << "\n=== E2b: tiny instances vs exact optima (8 items x "
            << tinySeeds << " seeds) ===\n";
  Table tiny({"metric", "DDFF", "DualColoring", "bound"});
  SummaryStats ddffVsOpt, dcVsOpt, ddffVsRepack, dcVsRepack;
  for (std::size_t s = 0; s < tinySeeds; ++s) {
    WorkloadSpec spec;
    spec.numItems = 8;
    spec.arrivalRate = 3.0;
    spec.mu = 6.0;
    Instance inst = generateWorkload(spec, 7000 + s);
    auto opt = bruteForceOptimal(inst);
    OptTotalResult repack = optTotal(inst);
    double ddff = durationDescendingFirstFit(inst).totalUsage();
    double dc = dualColoring(inst).packing.totalUsage();
    ddffVsOpt.add(ddff / opt->usage);
    dcVsOpt.add(dc / opt->usage);
    ddffVsRepack.add(ddff / repack.value());
    dcVsRepack.add(dc / repack.value());
  }
  tiny.addRow({"mean vs fixed OPT", Table::num(ddffVsOpt.mean(), 3),
               Table::num(dcVsOpt.mean(), 3), "-"});
  tiny.addRow({"max vs fixed OPT", Table::num(ddffVsOpt.max(), 3),
               Table::num(dcVsOpt.max(), 3), "-"});
  tiny.addRow({"mean vs OPT_total", Table::num(ddffVsRepack.mean(), 3),
               Table::num(dcVsRepack.mean(), 3), "-"});
  tiny.addRow({"max vs OPT_total", Table::num(ddffVsRepack.max(), 3),
               Table::num(dcVsRepack.max(), 3), "5 / 4 (Thm 1 / Thm 2)"});
  tiny.print(std::cout);

  telemetry::BenchReport report("offline_approx");
  report.setParam("items", items);
  report.setParam("seeds", numSeeds);
  report.setParam("tiny_seeds", tinySeeds);
  report.addTable("usage_over_lb3", table);
  report.addTable("tiny_vs_exact", tiny);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
