// Experiment E3 (ablation of Theorem 4): sweep the departure-window length
// rho of classify-by-departure-time First Fit and compare the empirical
// usage ratio with the theoretical curve rho/Delta + mu*Delta/rho + 3.
//
// Expected shape: the theoretical curve is U-shaped with its minimum at
// rho = sqrt(mu)*Delta; the empirical curve is much flatter (random
// workloads are benign) but shares the U shape — very small rho
// over-fragments bins, very large rho degenerates to plain First Fit.
//
// The whole sweep is one runMany grid: (1 generator) x (9 rho specs + the
// plain First Fit reference) x (seeds), fanned over --threads workers.
//
// Flags: --items <int> (default 2500), --mu <double> (default 16),
//        --seeds <int> (default 5), --threads <int> (default 0 = hardware).
#include <chrono>
#include <cmath>
#include <iostream>
#include <sstream>

#include "analysis/ratios.hpp"
#include "sim/run_many.hpp"
#include "telemetry/bench_report.hpp"
#include "util/ascii_chart.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv,
                                   {"items", "mu", "seeds", "threads", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 2500));
  double mu = flags.getDouble("mu", 16.0);
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 5));
  unsigned threads = static_cast<unsigned>(flags.getInt("threads", 0));

  WorkloadSpec spec;
  spec.numItems = items;
  spec.mu = mu;
  std::vector<std::uint64_t> seeds;
  for (std::size_t s = 0; s < numSeeds; ++s) seeds.push_back(31 + s);

  Instance probe = generateWorkload(spec, seeds[0]);
  double delta = probe.minDuration();
  double realizedMu = probe.durationRatio();
  double optRho = std::sqrt(realizedMu) * delta;

  std::cout << "=== E3: rho sweep for CDT-FF (mu = " << realizedMu
            << ", Delta = " << delta << ", optimal rho = " << optRho
            << ") ===\n";

  const std::vector<double> factors = {0.125, 0.25, 0.5, 1.0, 2.0,
                                       4.0,   8.0,  16.0, 32.0};
  RunManySpec grid;
  grid.instances.push_back(
      [spec](std::uint64_t seed) { return generateWorkload(spec, seed); });
  grid.seeds = seeds;
  grid.threads = threads;
  std::vector<double> rhos;
  for (double factor : factors) {
    double rho = factor * optRho;
    rhos.push_back(rho);
    std::ostringstream policySpec;
    policySpec.precision(17);
    policySpec << "cdt-ff(rho=" << rho << ")";
    grid.policies.emplace_back(policySpec.str());
  }
  grid.policies.emplace_back("ff");

  auto start = std::chrono::steady_clock::now();
  std::vector<RunResult> results = runMany(grid);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Grid order: policy-major within the single instance — cell (p, s) is
  // results[p * numSeeds + s].
  auto meanRatio = [&](std::size_t p) {
    SummaryStats stats;
    for (std::size_t s = 0; s < numSeeds; ++s) {
      stats.add(results[p * numSeeds + s].ratio);
    }
    return stats.mean();
  };

  Table table({"rho/Delta", "empirical usage/LB3", "theoretical ratio bound"});
  std::vector<double> xs, empirical, theory;
  for (std::size_t f = 0; f < factors.size(); ++f) {
    double rho = rhos[f];
    double mean = meanRatio(f);
    double bound = ratios::cdtRatio(rho, delta, realizedMu);
    table.addRow({Table::num(rho / delta, 3), Table::num(mean, 3),
                  Table::num(bound, 3)});
    xs.push_back(rho / delta);
    empirical.push_back(mean);
    theory.push_back(bound);
  }
  table.print(std::cout);

  std::cout << "\nplain FirstFit reference: usage/LB3 = "
            << Table::num(meanRatio(factors.size()), 3) << '\n';
  std::cout << "grid: " << results.size() << " runs in " << Table::num(elapsed, 2)
            << "s (threads=" << threads << ")\n";

  AsciiChart chart(72, 16);
  chart.setLogX(true);
  chart.addSeries("empirical", xs, empirical);
  chart.addSeries("theoretical bound", xs, theory);
  std::cout << '\n';
  chart.print(std::cout);

  telemetry::BenchReport report("rho_sweep");
  report.setParam("items", items);
  report.setParam("mu", mu);
  report.setParam("seeds", numSeeds);
  report.setParam("threads", static_cast<std::size_t>(threads));
  report.setParam("grid_seconds", elapsed);
  report.addTable("rho_sweep", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
