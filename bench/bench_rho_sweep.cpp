// Experiment E3 (ablation of Theorem 4): sweep the departure-window length
// rho of classify-by-departure-time First Fit and compare the empirical
// usage ratio with the theoretical curve rho/Delta + mu*Delta/rho + 3.
//
// Expected shape: the theoretical curve is U-shaped with its minimum at
// rho = sqrt(mu)*Delta; the empirical curve is much flatter (random
// workloads are benign) but shares the U shape — very small rho
// over-fragments bins, very large rho degenerates to plain First Fit.
//
// Flags: --items <int> (default 2500), --mu <double> (default 16),
//        --seeds <int> (default 5).
#include <cmath>
#include <iostream>

#include "analysis/empirical.hpp"
#include "analysis/ratios.hpp"
#include "online/any_fit.hpp"
#include "online/classify_departure.hpp"
#include "telemetry/bench_report.hpp"
#include "util/ascii_chart.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv, {"items", "mu", "seeds", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 2500));
  double mu = flags.getDouble("mu", 16.0);
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 5));

  WorkloadSpec spec;
  spec.numItems = items;
  spec.mu = mu;
  std::vector<std::uint64_t> seeds;
  for (std::size_t s = 0; s < numSeeds; ++s) seeds.push_back(31 + s);

  Instance probe = generateWorkload(spec, seeds[0]);
  double delta = probe.minDuration();
  double realizedMu = probe.durationRatio();
  double optRho = std::sqrt(realizedMu) * delta;

  std::cout << "=== E3: rho sweep for CDT-FF (mu = " << realizedMu
            << ", Delta = " << delta << ", optimal rho = " << optRho
            << ") ===\n";

  Table table({"rho/Delta", "empirical usage/LB3", "theoretical ratio bound"});
  std::vector<double> xs, empirical, theory;
  for (double factor : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    double rho = factor * optRho;
    RatioSummary summary = sweepPolicy(
        seeds, [&](std::uint64_t seed) { return generateWorkload(spec, seed); },
        [&]() -> PolicyPtr { return std::make_unique<ClassifyByDepartureFF>(rho); });
    double bound = ratios::cdtRatio(rho, delta, realizedMu);
    table.addRow({Table::num(rho / delta, 3), Table::num(summary.ratios.mean(), 3),
                  Table::num(bound, 3)});
    xs.push_back(rho / delta);
    empirical.push_back(summary.ratios.mean());
    theory.push_back(bound);
  }
  table.print(std::cout);

  // Plain First Fit reference at the same workload.
  RatioSummary ff = sweepPolicy(
      seeds, [&](std::uint64_t seed) { return generateWorkload(spec, seed); },
      [] { return std::make_unique<FirstFitPolicy>(); });
  std::cout << "\nplain FirstFit reference: usage/LB3 = "
            << Table::num(ff.ratios.mean(), 3) << '\n';

  AsciiChart chart(72, 16);
  chart.setLogX(true);
  chart.addSeries("empirical", xs, empirical);
  chart.addSeries("theoretical bound", xs, theory);
  std::cout << '\n';
  chart.print(std::cout);

  telemetry::BenchReport report("rho_sweep");
  report.setParam("items", items);
  report.setParam("mu", mu);
  report.setParam("seeds", numSeeds);
  report.addTable("rho_sweep", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
