// Experiment "Thm. 3 check": the adaptive lower-bound adversary played
// against every policy in the roster, across the duration parameter x.
// Expected shape: each policy's extracted ratio is at least
// min{(x+1)/x, (2x+1)/(x+1)}, and the guarantee peaks at the golden ratio
// when x = (1+sqrt(5))/2.
//
// Flags: --eps <double> (default 1e-3), --tau <double> (default 1e-4).
#include <iostream>

#include "analysis/adversary.hpp"
#include "analysis/ratios.hpp"
#include "online/policy_factory.hpp"
#include "telemetry/bench_report.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv, {"eps", "tau", "json"});
  double eps = flags.getDouble("eps", 1e-3);
  double tau = flags.getDouble("tau", 1e-4);

  std::cout << "=== Theorem 3 adversary: lower bound (1+sqrt(5))/2 = "
            << ratios::onlineLowerBound() << " ===\n";
  std::cout << "(co-located? -> adversary plays case B; otherwise case A)\n\n";

  std::vector<double> xs = {1.2, 1.4, ratios::adversaryOptimalX(), 1.8, 2.2};
  Table table({"policy", "x", "co-located", "ratio", "guarantee min{...}"});
  // The roster needs duration parameters; the gadget has durations in
  // [1, x], so Delta = 1 and mu = x.
  for (double x : xs) {
    for (const PolicyPtr& policy : fullRoster(1.0, x)) {
      AdversaryOutcome outcome = runTheorem3Adversary(*policy, x, eps, tau);
      table.addRow({policy->name(), Table::num(x, 4),
                    outcome.coLocated ? "yes" : "no",
                    Table::num(outcome.ratio, 4),
                    Table::num(outcome.guarantee, 4)});
    }
  }
  table.print(std::cout);

  std::cout << "\nWorst extracted ratio at x = phi should approach phi as "
               "eps, tau -> 0.\n";

  // The bound is deterministic-only: a randomized first decision beats it.
  std::cout << "\n=== Randomized play (co-locate with probability p, "
               "x = phi) ===\n";
  Table randomized({"p", "adversary value max{E[A], E[B]}"});
  double phi = ratios::adversaryOptimalX();
  for (double p : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    randomized.addRow(
        {Table::num(p, 2), Table::num(ratios::randomizedAdversaryValue(phi, p), 4)});
  }
  randomized.print(std::cout);
  std::cout << "best randomized value: "
            << Table::num(ratios::randomizedAdversaryBest(phi), 4)
            << "  < deterministic lower bound "
            << Table::num(ratios::onlineLowerBound(), 4) << '\n';

  telemetry::BenchReport report("adversary");
  report.setParam("eps", eps);
  report.setParam("tau", tau);
  report.addTable("theorem3_adversary", table);
  report.addTable("randomized_play", randomized);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
