#!/usr/bin/env bash
# scripts/check.sh — the full local analysis gauntlet, mirroring CI.
#
#   1. cdbp_lint (project invariant linter) + its self-test
#   2. cdbp_analyze frontend self-test (semantic layers need libclang and
#      run under --analyze)
#   3. Release build + full ctest suite
#   4. ASan/UBSan build + ctest (debug contracts active)
#   5. TSan build + the thread-pool / parallel-harness tests
#   6. clang-tidy over src/ (skipped with a notice when not installed)
#
# Usage: scripts/check.sh [--quick] [--perf] [--analyze]
#   --quick runs only lint + the Release suite (steps 1-3).
#   --analyze additionally runs the semantic analyzer (tools/cdbp_analyze)
#          over src/ plus its fixture self-test. Requires libclang; fails
#          with the analyzer's install hint when it is missing.
#   --perf additionally runs the reduced throughput, multidim,
#          streaming and serve benches (the CI perf-smoke job), leaves
#          BENCH_throughput.json, BENCH_multidim.json,
#          BENCH_streaming.json and BENCH_serve.json behind, and runs
#          tools/perf_guard.py
#          against the committed baselines: no benchmark may lose >20%
#          items/sec relative to the fleet, and the indexed engine must
#          stay >=3x the linear scan on the scalar many-open-bins series
#          and >=2x on the multidim one (vector pruning is approximate,
#          so the bar is lower).
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
PERF=0
ANALYZE=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --perf) PERF=1 ;;
    --analyze) ANALYZE=1 ;;
    *) echo "unknown option: $arg (accepted: --quick, --perf, --analyze)" >&2; exit 2 ;;
  esac
done

step() { printf '\n=== %s ===\n' "$*"; }

step "cdbp_lint"
python3 tools/cdbp_lint.py
python3 tools/cdbp_lint.py --self-test

step "cdbp_analyze (frontend self-test)"
python3 tools/cdbp_analyze --self-test-frontend

step "Release build + tests"
cmake --preset release
cmake --build --preset release -j
ctest --preset release -j

if [[ "$ANALYZE" == "1" ]]; then
  # Semantic layer: libclang-backed AST checks over src/, driven by the
  # release preset's compile_commands.json. Exits 2 with an install hint
  # when libclang is missing (we deliberately do NOT pass
  # --skip-missing-libclang here: asking for --analyze means asking for
  # the real thing).
  step "cdbp_analyze (fixture self-test)"
  python3 tools/cdbp_analyze --self-test
  step "cdbp_analyze (semantic checks over src/)"
  python3 tools/cdbp_analyze --compdb build-release/compile_commands.json
fi

if [[ "$PERF" == "1" ]]; then
  step "perf smoke (reduced throughput bench -> BENCH_throughput.json)"
  ./build-release/bench/bench_throughput --reps 3 --max-items 4000 \
    --json=BENCH_throughput.json

  step "perf guard (>20% regression vs committed baseline fails)"
  python3 tools/perf_guard.py bench/baselines/BENCH_throughput.json \
    BENCH_throughput.json

  step "perf guard (indexed engine >=3x linear scan on many-open-bins)"
  ./build-release/bench/bench_throughput --reps 3 --max-items 4000 \
    --engine linear --json=BENCH_throughput_linear.json
  python3 tools/perf_guard.py BENCH_throughput_linear.json \
    BENCH_throughput.json --min-speedup 3 --filter ManyOpen

  step "perf smoke (reduced multidim bench -> BENCH_multidim.json)"
  ./build-release/bench/bench_multidim --reps 3 --max-items 4000 \
    --json=BENCH_multidim.json

  step "multidim perf guard (>20% regression vs committed baseline fails)"
  python3 tools/perf_guard.py bench/baselines/BENCH_multidim.json \
    BENCH_multidim.json

  step "multidim perf guard (indexed engine >=2x linear scan on many-open-bins)"
  ./build-release/bench/bench_multidim --reps 3 --max-items 4000 \
    --engine linear --filter MdManyOpen --json=BENCH_multidim_linear.json
  python3 tools/perf_guard.py BENCH_multidim_linear.json \
    BENCH_multidim.json --min-speedup 2 --filter MdManyOpen

  step "perf smoke (reduced streaming bench -> BENCH_streaming.json)"
  ./build-release/bench/bench_streaming --reps 3 --max-items 200000 \
    --json=BENCH_streaming.json

  step "streaming perf guard (>20% regression vs committed baseline fails)"
  python3 tools/perf_guard.py bench/baselines/BENCH_streaming.json \
    BENCH_streaming.json

  step "perf smoke (reduced serve bench -> BENCH_serve.json)"
  ./build-release/bench/bench_serve --reps 3 --max-items 20000 \
    --threads 4 --json=BENCH_serve.json

  step "serve perf guard (>20% regression vs committed baseline fails)"
  python3 tools/perf_guard.py bench/baselines/BENCH_serve.json \
    BENCH_serve.json

  if [[ "$(nproc)" -ge 4 ]]; then
    step "serve scaling guard (4-loop daemon >=2.5x the 1-loop daemon)"
    python3 tools/perf_guard.py bench/baselines/BENCH_serve.json \
      BENCH_serve.json --scaling-num /t4 --scaling-den /t1 --min-ratio 2.5

    step "sharded scaling guard (epoch-sharded engine >=3x the indexed stream)"
    ./build-release/bench/bench_streaming --reps 2 --filter FlatTrace \
      --threads 4 --json=BENCH_streaming_sharded.json
    python3 tools/perf_guard.py bench/baselines/BENCH_streaming.json \
      BENCH_streaming_sharded.json --scaling-num /t4 --scaling-den /t1 \
      --min-ratio 3 --filter FlatTrace/cdt-ff/1000000
  else
    echo "serve + sharded scaling guards skipped: $(nproc) cores < 4"
  fi
fi

if [[ "$QUICK" == "1" ]]; then
  echo "--quick: skipping sanitizer matrix and clang-tidy"
  exit 0
fi

step "ASan/UBSan build + tests"
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j
ctest --preset asan-ubsan -j

step "TSan build + concurrency tests"
cmake --preset tsan
cmake --build --preset tsan -j
# The whole suite is TSan-clean, but the concurrency contract lives in the
# thread pool, the parallel simulation harness, the telemetry registry,
# the sharded serve daemon and the epoch-sharded simulation engine — run
# those at minimum, then the rest (cheap enough to keep on).
ctest --preset tsan -j -R 'ThreadPool|ParallelFor|TelemetryConcurrency|Serve|Sharded' --no-tests=error
ctest --preset tsan -j

step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json from the release preset drives the tidy run
  # (every preset exports one).
  cmake --preset release >/dev/null
  mapfile -t sources < <(find src -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p build-release "${sources[@]}"
  else
    clang-tidy -quiet -p build-release "${sources[@]}"
  fi
else
  echo "clang-tidy not installed; skipping (CI runs it — see .github/workflows/ci.yml)"
fi

step "all checks passed"
