#include "workload/transforms.hpp"

#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "offline/ddff.hpp"
#include "online/any_fit.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

Instance sample(std::uint64_t seed = 5) {
  WorkloadSpec spec;
  spec.numItems = 120;
  spec.mu = 8.0;
  return generateWorkload(spec, seed);
}

TEST(Transforms, ScaleTimeScalesIntervals) {
  Instance inst = sample();
  Instance scaled = scaleTime(inst, 3.0);
  for (ItemId i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(scaled[i].arrival(), 3.0 * inst[i].arrival());
    // Durations are differences of scaled endpoints: equal up to rounding.
    EXPECT_NEAR(scaled[i].duration(), 3.0 * inst[i].duration(), 1e-9);
    EXPECT_DOUBLE_EQ(scaled[i].size, inst[i].size);
  }
  EXPECT_THROW(scaleTime(inst, 0), std::invalid_argument);
}

TEST(Transforms, ShiftTimePreservesDurations) {
  Instance inst = sample();
  Instance shifted = shiftTime(inst, -7.5);
  for (ItemId i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(shifted[i].duration(), inst[i].duration());
    EXPECT_DOUBLE_EQ(shifted[i].arrival(), inst[i].arrival() - 7.5);
  }
}

TEST(Transforms, ScaleSizesClampsIntoUnitRange) {
  Instance inst = InstanceBuilder().add(0.8, 0, 1).add(0.1, 0, 1).build();
  Instance scaled = scaleSizes(inst, 2.0);
  EXPECT_DOUBLE_EQ(scaled[0].size, 1.0);  // clamped
  EXPECT_DOUBLE_EQ(scaled[1].size, 0.2);
}

TEST(Transforms, MergeConcatenatesAndRenumbers) {
  Instance a = InstanceBuilder().add(0.5, 0, 1).build();
  Instance b = InstanceBuilder().add(0.25, 5, 6).add(0.25, 7, 8).build();
  Instance merged = mergeInstances(a, b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[2].id, 2u);
  EXPECT_DOUBLE_EQ(merged[2].arrival(), 7.0);
}

TEST(Transforms, FilterKeepsMatching) {
  Instance inst = sample();
  Instance bigOnly =
      filterItems(inst, [](const Item& r) { return r.size > 0.5; });
  for (const Item& r : bigOnly.items()) EXPECT_GT(r.size, 0.5);
  EXPECT_LT(bigOnly.size(), inst.size());
}

TEST(Transforms, SplitPartitionsByArrival) {
  Instance inst = sample();
  Time mid = inst.activeUnion().min() + inst.span() / 2;
  auto [early, late] = splitAt(inst, mid);
  EXPECT_EQ(early.size() + late.size(), inst.size());
  for (const Item& r : early.items()) EXPECT_LT(r.arrival(), mid);
  for (const Item& r : late.items()) EXPECT_GE(r.arrival(), mid);
}

// Metamorphic properties: how algorithm outputs must respond to input
// transformations.
class Metamorphic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Metamorphic, UsageIsTimeScaleEquivariant) {
  Instance inst = sample(GetParam());
  Instance scaled = scaleTime(inst, 2.5);
  FirstFitPolicy ff;
  double base = simulateOnline(inst, ff).totalUsage;
  double dilated = simulateOnline(scaled, ff).totalUsage;
  EXPECT_NEAR(dilated, 2.5 * base, 1e-6 * std::max(1.0, base));

  double ddffBase = durationDescendingFirstFit(inst).totalUsage();
  double ddffDilated = durationDescendingFirstFit(scaled).totalUsage();
  EXPECT_NEAR(ddffDilated, 2.5 * ddffBase, 1e-6 * std::max(1.0, ddffBase));
}

TEST_P(Metamorphic, FirstFitDecisionsAreTimeShiftInvariant) {
  Instance inst = sample(GetParam());
  Instance shifted = shiftTime(inst, 113.0);
  FirstFitPolicy ff;
  SimResult base = simulateOnline(inst, ff);
  SimResult moved = simulateOnline(shifted, ff);
  EXPECT_EQ(base.packing.binOf(), moved.packing.binOf());
  EXPECT_NEAR(base.totalUsage, moved.totalUsage, 1e-6);
}

TEST_P(Metamorphic, LowerBoundsScaleWithTime) {
  Instance inst = sample(GetParam());
  LowerBounds base = lowerBounds(inst);
  LowerBounds scaled = lowerBounds(scaleTime(inst, 4.0));
  EXPECT_NEAR(scaled.demand, 4.0 * base.demand, 1e-6);
  EXPECT_NEAR(scaled.span, 4.0 * base.span, 1e-6);
  EXPECT_NEAR(scaled.ceilIntegral, 4.0 * base.ceilIntegral, 1e-6);
}

TEST_P(Metamorphic, MergeOfDisjointSpansAddsUsage) {
  Instance a = sample(GetParam());
  // Push b far past a's horizon so spans are disjoint.
  Instance b = shiftTime(sample(GetParam() + 1000), a.activeUnion().max() + 100);
  Instance merged = mergeInstances(a, b);
  FirstFitPolicy ff;
  double ua = simulateOnline(a, ff).totalUsage;
  double ub = simulateOnline(b, ff).totalUsage;
  double um = simulateOnline(merged, ff).totalUsage;
  EXPECT_NEAR(um, ua + ub, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Metamorphic, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace cdbp
