#include "workload/generators.hpp"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(Generators, DeterministicUnderSeed) {
  WorkloadSpec spec;
  spec.numItems = 100;
  Instance a = generateWorkload(spec, 42);
  Instance b = generateWorkload(spec, 42);
  ASSERT_EQ(a.size(), b.size());
  for (ItemId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Generators, DifferentSeedsDiffer) {
  WorkloadSpec spec;
  spec.numItems = 50;
  Instance a = generateWorkload(spec, 1);
  Instance b = generateWorkload(spec, 2);
  bool anyDifferent = false;
  for (ItemId i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) anyDifferent = true;
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(Generators, RejectsBadSpecs) {
  WorkloadSpec spec;
  spec.mu = 0.5;
  EXPECT_THROW(generateWorkload(spec, 1), std::invalid_argument);
  spec = {};
  spec.minSize = 0;
  EXPECT_THROW(generateWorkload(spec, 1), std::invalid_argument);
  spec = {};
  spec.minSize = 0.9;
  spec.maxSize = 0.5;
  EXPECT_THROW(generateWorkload(spec, 1), std::invalid_argument);
}

class DurationDistCase
    : public ::testing::TestWithParam<std::tuple<DurationDist, std::uint64_t>> {};

TEST_P(DurationDistCase, DurationsStayWithinMuWindow) {
  WorkloadSpec spec;
  spec.numItems = 400;
  spec.durations = std::get<0>(GetParam());
  spec.minDuration = 2.0;
  spec.mu = 10.0;
  Instance inst = generateWorkload(spec, std::get<1>(GetParam()));
  for (const Item& r : inst.items()) {
    EXPECT_GE(r.duration(), spec.minDuration - 1e-12);
    EXPECT_LE(r.duration(), spec.mu * spec.minDuration + 1e-12);
  }
  EXPECT_LE(inst.durationRatio(), spec.mu + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllDists, DurationDistCase,
    ::testing::Combine(::testing::Values(DurationDist::kUniform,
                                         DurationDist::kExponential,
                                         DurationDist::kPareto,
                                         DurationDist::kLogNormal,
                                         DurationDist::kBimodal),
                       ::testing::Values(1, 7)));

class SizeDistCase
    : public ::testing::TestWithParam<std::tuple<SizeDist, std::uint64_t>> {};

TEST_P(SizeDistCase, SizesAreValidForUnitBins) {
  WorkloadSpec spec;
  spec.numItems = 300;
  spec.sizes = std::get<0>(GetParam());
  Instance inst = generateWorkload(spec, std::get<1>(GetParam()));
  for (const Item& r : inst.items()) {
    EXPECT_GT(r.size, 0.0);
    EXPECT_LE(r.size, 1.0);
    if (spec.sizes == SizeDist::kSmallOnly) {
      EXPECT_LE(r.size, 0.5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDists, SizeDistCase,
    ::testing::Combine(::testing::Values(SizeDist::kUniform,
                                         SizeDist::kSmallOnly,
                                         SizeDist::kFlavors),
                       ::testing::Values(3, 11)));

TEST(Generators, PoissonArrivalsAreIncreasing) {
  WorkloadSpec spec;
  spec.numItems = 200;
  spec.arrivals = ArrivalProcess::kPoisson;
  Instance inst = generateWorkload(spec, 5);
  std::vector<Item> order = inst.sortedByArrival();
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(order[i].arrival(), order[i - 1].arrival());
  }
}

TEST(Generators, BurstyArrivalsProduceTies) {
  WorkloadSpec spec;
  spec.numItems = 64;
  spec.arrivals = ArrivalProcess::kBursty;
  spec.burstSize = 8;
  Instance inst = generateWorkload(spec, 5);
  std::size_t ties = 0;
  std::vector<Item> order = inst.sortedByArrival();
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i].arrival() == order[i - 1].arrival()) ++ties;
  }
  EXPECT_GE(ties, 32u);  // most items share a burst instant
}

TEST(Generators, ArrivalRateControlsHorizon) {
  WorkloadSpec dense;
  dense.numItems = 500;
  dense.arrivalRate = 100.0;
  WorkloadSpec sparse = dense;
  sparse.arrivalRate = 1.0;
  Instance denseInst = generateWorkload(dense, 9);
  Instance sparseInst = generateWorkload(sparse, 9);
  EXPECT_LT(denseInst.span(), sparseInst.span());
  EXPECT_GT(denseInst.peakTotalSize(), sparseInst.peakTotalSize());
}

TEST(Generators, FlavorSizesComeFromTheList) {
  WorkloadSpec spec;
  spec.numItems = 100;
  spec.sizes = SizeDist::kFlavors;
  spec.flavors = {0.25, 0.5};
  Instance inst = generateWorkload(spec, 13);
  for (const Item& r : inst.items()) {
    EXPECT_TRUE(r.size == 0.25 || r.size == 0.5) << r.size;
  }
}

}  // namespace
}  // namespace cdbp
