#include "workload/adversarial.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "online/any_fit.hpp"
#include "online/classify_duration.hpp"
#include "sim/simulator.hpp"

namespace cdbp {
namespace {

TEST(Theorem3Gadget, CaseAShape) {
  Instance inst = theorem3CaseA(2.0, 0.01);
  ASSERT_EQ(inst.size(), 2u);
  EXPECT_DOUBLE_EQ(inst[0].duration(), 2.0);
  EXPECT_DOUBLE_EQ(inst[1].duration(), 1.0);
  EXPECT_DOUBLE_EQ(inst[0].size, 0.49);
  // Optimal co-location usage is x.
  auto opt = bruteForceOptimal(inst);
  ASSERT_TRUE(opt.has_value());
  EXPECT_DOUBLE_EQ(opt->usage, 2.0);
}

TEST(Theorem3Gadget, CaseBShapeAndOptimum) {
  double x = 1.8, eps = 0.01, tau = 0.05;
  Instance inst = theorem3CaseB(x, eps, tau);
  ASSERT_EQ(inst.size(), 4u);
  auto opt = bruteForceOptimal(inst);
  ASSERT_TRUE(opt.has_value());
  // Pair 1&3 and 2&4: x + 1 + 2*tau.
  EXPECT_NEAR(opt->usage, x + 1 + 2 * tau, 1e-9);
}

TEST(Theorem3Gadget, ParameterValidation) {
  EXPECT_THROW(theorem3CaseA(1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(theorem3CaseA(2.0, 0.6), std::invalid_argument);
  EXPECT_THROW(theorem3CaseB(2.0, 0.1, 0.0), std::invalid_argument);
}

TEST(SliverTrap, FirstFitScattersSliversAcrossBins) {
  std::size_t k = 6;
  Instance inst = firstFitSliverTrap(k, 20.0);
  FirstFitPolicy ff;
  SimResult r = simulateOnline(inst, ff);
  // Each phase's filler opens a bin and its sliver tops that bin off.
  EXPECT_EQ(r.binsOpened, k);
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_EQ(r.packing.binOf(static_cast<ItemId>(2 * j)),
              r.packing.binOf(static_cast<ItemId>(2 * j + 1)));
  }
}

TEST(SliverTrap, DurationClassificationDefusesIt) {
  std::size_t k = 6;
  double mu = 20.0;
  Instance inst = firstFitSliverTrap(k, mu);
  FirstFitPolicy ff;
  ClassifyByDurationFF cd(inst.minDuration(), 2.0);
  double ffUsage = simulateOnline(inst, ff).totalUsage;
  double cdUsage = simulateOnline(inst, cd).totalUsage;
  // FF pays ~k*mu; classification pays ~k + mu. The gap must be wide.
  EXPECT_GT(ffUsage, 2.0 * cdUsage);
}

TEST(SliverTrap, ParameterValidation) {
  EXPECT_THROW(firstFitSliverTrap(0, 10.0), std::invalid_argument);
  EXPECT_THROW(firstFitSliverTrap(4, 0.5), std::invalid_argument);
  EXPECT_THROW(firstFitSliverTrap(4, 10.0, 0.5), std::invalid_argument);
}

TEST(Sawtooth, GeneratesAlternatingPairs) {
  Instance inst = sawtoothWaves(2, 3, 8.0);
  ASSERT_EQ(inst.size(), 12u);
  // Even ids big-short, odd ids small-long.
  EXPECT_GT(inst[0].size, 0.5);
  EXPECT_LT(inst[1].size, 0.5);
  EXPECT_LT(inst[0].duration(), inst[1].duration());
}

TEST(Sawtooth, FeasiblyPackableByFirstFit) {
  Instance inst = sawtoothWaves(4, 5, 10.0);
  FirstFitPolicy ff;
  SimResult r = simulateOnline(inst, ff);
  EXPECT_FALSE(r.packing.validate().has_value());
}

}  // namespace
}  // namespace cdbp
