#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "workload/generators.hpp"

namespace cdbp {
namespace {

Instance sampleWorkload(std::size_t n = 200, std::uint64_t seed = 11) {
  WorkloadSpec spec;
  spec.numItems = n;
  spec.mu = 16.0;
  return generateWorkload(spec, seed);
}

// --- Round-trip property: generator -> writeTrace -> readTrace gives back
// the exact same doubles, for both flavors. Shortest-round-trip output is
// the mechanism; this pins the end-to-end guarantee.

void expectRoundTripBitwise(TraceFormat format) {
  Instance original = sampleWorkload();
  std::stringstream buffer;
  writeTrace(original, buffer, format, "round-trip test");
  Instance restored = readTraceInstance(buffer, format, "buffer");

  std::vector<Item> expected = original.sortedByArrival();
  ASSERT_EQ(restored.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const Item& want = expected[i];
    const Item& got = restored[static_cast<ItemId>(i)];
    // Bitwise, not approximate: EXPECT_EQ on doubles.
    EXPECT_EQ(got.size, want.size) << "item " << i;
    EXPECT_EQ(got.arrival(), want.arrival()) << "item " << i;
    EXPECT_EQ(got.departure(), want.departure()) << "item " << i;
  }

  // Idempotence: writing the restored instance reproduces the byte stream
  // (restored is already arrival-sorted and densely numbered).
  std::stringstream again;
  writeTrace(restored, again, format, "round-trip test");
  EXPECT_EQ(again.str(), buffer.str());
}

TEST(TraceIo, RoundTripBitwiseCsv) {
  expectRoundTripBitwise(TraceFormat::kCsv);
}

TEST(TraceIo, RoundTripBitwiseJsonl) {
  expectRoundTripBitwise(TraceFormat::kJsonl);
}

TEST(TraceIo, FileRoundTripByExtension) {
  namespace fs = std::filesystem;
  Instance original = sampleWorkload(60, 3);
  for (const char* ext : {".csv", ".jsonl"}) {
    fs::path path = fs::temp_directory_path() /
                    (std::string("cdbp_trace_io_test") + ext);
    saveTrace(original, path.string(), "file round trip");
    Instance restored = loadTraceInstance(path.string());
    std::vector<Item> expected = original.sortedByArrival();
    ASSERT_EQ(restored.size(), expected.size()) << ext;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(restored[static_cast<ItemId>(i)].size, expected[i].size);
    }
    fs::remove(path);
  }
}

TEST(TraceIo, FormatForPath) {
  EXPECT_EQ(traceFormatForPath("a/b/jobs.csv"), TraceFormat::kCsv);
  EXPECT_EQ(traceFormatForPath("jobs.jsonl"), TraceFormat::kJsonl);
  EXPECT_THROW(traceFormatForPath("jobs.txt"), TraceError);
  EXPECT_THROW(traceFormatForPath("jobs"), TraceError);
  EXPECT_EQ(traceFormatName(TraceFormat::kCsv), "csv");
  EXPECT_EQ(traceFormatName(TraceFormat::kJsonl), "jsonl");
}

// --- Malformed input: every case must raise TraceError whose message
// carries the source label and the 1-based line number — never a crash,
// never a silently skipped record.

void expectFailure(const std::string& content, TraceFormat format,
                   const std::string& wantInMessage) {
  std::istringstream in(content);
  TraceReader reader(in, format, "bad.trace");
  TraceRecord record;
  try {
    while (reader.next(record)) {
    }
    FAIL() << "expected TraceError containing '" << wantInMessage << "'";
  } catch (const TraceError& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("bad.trace"), std::string::npos) << message;
    EXPECT_NE(message.find(wantInMessage), std::string::npos) << message;
  }
}

void expectHeaderFailure(const std::string& content, TraceFormat format,
                         const std::string& wantInMessage) {
  std::istringstream in(content);
  try {
    TraceReader reader(in, format, "bad.trace");
    FAIL() << "expected TraceError containing '" << wantInMessage << "'";
  } catch (const TraceError& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("bad.trace"), std::string::npos) << message;
    EXPECT_NE(message.find("line 1"), std::string::npos) << message;
    EXPECT_NE(message.find(wantInMessage), std::string::npos) << message;
  }
}

const char kCsvHeader[] = "# cdbp-trace v1\narrival,departure,size\n";

TEST(TraceIo, CsvTruncatedLine) {
  expectFailure(std::string(kCsvHeader) + "0,4,0.5\n1,3\n", TraceFormat::kCsv,
                "line 4");
  expectFailure(std::string(kCsvHeader) + "1,3\n", TraceFormat::kCsv,
                "expected 3 cells, got 2");
}

TEST(TraceIo, CsvNanSize) {
  expectFailure(std::string(kCsvHeader) + "0,4,nan\n", TraceFormat::kCsv,
                "size must be in (0, 1]");
  expectFailure(std::string(kCsvHeader) + "0,4,nan\n", TraceFormat::kCsv,
                "line 3");
}

TEST(TraceIo, CsvNonFiniteTime) {
  expectFailure(std::string(kCsvHeader) + "0,inf,0.5\n", TraceFormat::kCsv,
                "times must be finite");
}

TEST(TraceIo, CsvDepartureBeforeArrival) {
  expectFailure(std::string(kCsvHeader) + "5,4,0.5\n", TraceFormat::kCsv,
                "departure");
  expectFailure(std::string(kCsvHeader) + "5,5,0.5\n", TraceFormat::kCsv,
                "strictly after arrival");
}

TEST(TraceIo, CsvSizeOutOfRange) {
  expectFailure(std::string(kCsvHeader) + "0,4,1.5\n", TraceFormat::kCsv,
                "size must be in (0, 1]");
  expectFailure(std::string(kCsvHeader) + "0,4,0\n", TraceFormat::kCsv,
                "size must be in (0, 1]");
  expectFailure(std::string(kCsvHeader) + "0,4,-0.5\n", TraceFormat::kCsv,
                "size must be in (0, 1]");
}

TEST(TraceIo, CsvJunkCell) {
  expectFailure(std::string(kCsvHeader) + "0,4,0.5x\n", TraceFormat::kCsv,
                "is not a number");
  expectFailure(std::string(kCsvHeader) + "0,4abc,0.5\n", TraceFormat::kCsv,
                "cell 2");
}

TEST(TraceIo, CsvUnsortedArrivals) {
  expectFailure(std::string(kCsvHeader) + "5,8,0.5\n3,9,0.5\n",
                TraceFormat::kCsv, "arrivals must be nondecreasing");
  expectFailure(std::string(kCsvHeader) + "5,8,0.5\n3,9,0.5\n",
                TraceFormat::kCsv, "line 4");
}

TEST(TraceIo, CsvBadMagicAndVersion) {
  expectHeaderFailure("hello\n", TraceFormat::kCsv, "magic");
  expectHeaderFailure("", TraceFormat::kCsv, "empty input");
  expectHeaderFailure("# cdbp-trace v2\narrival,departure,size\n",
                      TraceFormat::kCsv, "unsupported trace version 2");
  expectHeaderFailure("# cdbp-trace vX\n", TraceFormat::kCsv,
                      "malformed version");
}

TEST(TraceIo, CsvBadColumnHeader) {
  std::istringstream in("# cdbp-trace v1\nsize,arrival,departure\n");
  try {
    TraceReader reader(in, TraceFormat::kCsv, "bad.trace");
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  }
}

TEST(TraceIo, CsvSkipsBlankAndCommentLines) {
  std::istringstream in(std::string(kCsvHeader) +
                        "# provenance comment\n\n0,4,0.5\n\n# more\n1,3,0.25\n");
  Instance inst = readTraceInstance(in, TraceFormat::kCsv);
  ASSERT_EQ(inst.size(), 2u);
  EXPECT_EQ(inst[0].size, 0.5);
  EXPECT_EQ(inst[1].size, 0.25);
}

const char kJsonlHeader[] = "{\"format\":\"cdbp-trace\",\"version\":1}\n";

TEST(TraceIo, JsonlHeaderVariants) {
  // dims defaults to 1; unknown keys are ignored; whitespace tolerated.
  std::istringstream in(
      "{ \"format\": \"cdbp-trace\", \"version\": 1, \"dims\": 1, "
      "\"note\": \"made by make_trace\", \"extra\": 7 }\n[0,4,0.5]\n");
  Instance inst = readTraceInstance(in, TraceFormat::kJsonl);
  ASSERT_EQ(inst.size(), 1u);
  EXPECT_EQ(inst[0].size, 0.5);
}

TEST(TraceIo, JsonlBadHeader) {
  expectHeaderFailure("hello\n", TraceFormat::kJsonl, "malformed header");
  expectHeaderFailure("", TraceFormat::kJsonl, "empty input");
  expectHeaderFailure("{\"version\":1}\n", TraceFormat::kJsonl,
                      "missing \"format\"");
  expectHeaderFailure("{\"format\":\"cdbp-trace\"}\n", TraceFormat::kJsonl,
                      "missing \"version\"");
  expectHeaderFailure("{\"format\":\"other\",\"version\":1}\n",
                      TraceFormat::kJsonl, "must be the string");
  expectHeaderFailure("{\"format\":\"cdbp-trace\",\"version\":2}\n",
                      TraceFormat::kJsonl, "unsupported trace version 2");
  expectHeaderFailure("{\"format\":\"cdbp-trace\",\"version\":1,\"dims\":0}\n",
                      TraceFormat::kJsonl, "positive integer");
  expectHeaderFailure(
      "{\"format\":\"cdbp-trace\",\"version\":1} trailing\n",
      TraceFormat::kJsonl, "trailing characters");
}

TEST(TraceIo, JsonlMalformedRecords) {
  expectFailure(std::string(kJsonlHeader) + "[0,4]\n", TraceFormat::kJsonl,
                "expected 3 elements, got 2");
  expectFailure(std::string(kJsonlHeader) + "[0,4]\n", TraceFormat::kJsonl,
                "line 2");
  expectFailure(std::string(kJsonlHeader) + "[0,4,0.5,0.1]\n",
                TraceFormat::kJsonl, "expected 3 elements");
  expectFailure(std::string(kJsonlHeader) + "0,4,0.5\n", TraceFormat::kJsonl,
                "expected a JSON array record");
  expectFailure(std::string(kJsonlHeader) + "[0,4,0.5] junk\n",
                TraceFormat::kJsonl, "trailing characters");
  expectFailure(std::string(kJsonlHeader) + "[0,4,abc]\n", TraceFormat::kJsonl,
                "is not a number");
  expectFailure(std::string(kJsonlHeader) + "[0,4,nan]\n", TraceFormat::kJsonl,
                "size must be in (0, 1]");
  expectFailure(std::string(kJsonlHeader) + "[5,8,0.5]\n[3,9,0.5]\n",
                TraceFormat::kJsonl, "line 3");
}

// --- Multi-dimensional traces: the writer/reader carry them; the scalar
// consumers reject them loudly.

TEST(TraceIo, MultiDimRoundTripAndScalarRejection) {
  std::stringstream buffer;
  {
    TraceWriter writer(buffer, TraceFormat::kJsonl, 2, "two dims");
    TraceRecord record;
    record.arrival = 0;
    record.departure = 4;
    record.sizes = {0.5, 0.25};
    writer.write(record);
    record.arrival = 1;
    record.departure = 3;
    record.sizes = {0.125, 0.75};
    writer.write(record);
    EXPECT_EQ(writer.recordsWritten(), 2u);
  }
  {
    std::istringstream in(buffer.str());
    TraceReader reader(in, TraceFormat::kJsonl);
    EXPECT_EQ(reader.dims(), 2u);
    TraceRecord record;
    ASSERT_TRUE(reader.next(record));
    ASSERT_EQ(record.sizes.size(), 2u);
    EXPECT_EQ(record.sizes[1], 0.25);
    ASSERT_TRUE(reader.next(record));
    EXPECT_FALSE(reader.next(record));
    EXPECT_EQ(reader.recordsRead(), 2u);
  }
  {
    std::istringstream in(buffer.str());
    EXPECT_THROW(readTraceInstance(in, TraceFormat::kJsonl), TraceError);
  }
  {
    std::istringstream in(buffer.str());
    EXPECT_THROW(TraceArrivalSource(in, TraceFormat::kJsonl), TraceError);
  }
}

TEST(TraceIo, CsvMultiDimColumnHeader) {
  std::stringstream buffer;
  TraceWriter writer(buffer, TraceFormat::kCsv, 3);
  std::string header = buffer.str();
  EXPECT_NE(header.find("arrival,departure,size,size2,size3"),
            std::string::npos)
      << header;
  std::istringstream in(buffer.str());
  TraceReader reader(in, TraceFormat::kCsv);
  EXPECT_EQ(reader.dims(), 3u);
}

// --- Writer-side validation: fail at the producer, with the same model
// rules the reader enforces.

TEST(TraceIo, WriterRejectsInvalidRecords) {
  std::stringstream buffer;
  TraceWriter writer(buffer, TraceFormat::kCsv);
  EXPECT_THROW(writer.write(4, 4, 0.5), TraceError);   // empty interval
  EXPECT_THROW(writer.write(0, 4, 1.5), TraceError);   // size > capacity
  EXPECT_THROW(writer.write(0, 4, 0.0), TraceError);   // size 0
  writer.write(5, 8, 0.5);
  EXPECT_THROW(writer.write(3, 9, 0.5), TraceError);   // arrival order
  TraceRecord wrongDims;
  wrongDims.arrival = 6;
  wrongDims.departure = 7;
  wrongDims.sizes = {0.5, 0.5};
  EXPECT_THROW(writer.write(wrongDims), TraceError);   // dims mismatch
  EXPECT_EQ(writer.recordsWritten(), 1u);
}

TEST(TraceIo, WriterRejectsMultiLineNote) {
  std::stringstream buffer;
  EXPECT_THROW(TraceWriter(buffer, TraceFormat::kCsv, 1, "two\nlines"),
               TraceError);
}

// --- scanTrace: one-pass statistics.

TEST(TraceIo, ScanTraceStats) {
  std::istringstream in(std::string(kCsvHeader) +
                        "0,4,0.5\n1,3,0.25\n2,10,1\n");
  TraceStats stats = scanTrace(in, TraceFormat::kCsv);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.dims, 1u);
  EXPECT_EQ(stats.minArrival, 0.0);
  EXPECT_EQ(stats.maxArrival, 2.0);
  EXPECT_EQ(stats.maxDeparture, 10.0);
  EXPECT_EQ(stats.minDuration, 2.0);
  EXPECT_EQ(stats.maxDuration, 8.0);
  EXPECT_DOUBLE_EQ(stats.mu, 4.0);
  EXPECT_EQ(stats.maxSize, 1.0);
  EXPECT_DOUBLE_EQ(stats.demand, 0.5 * 4 + 0.25 * 2 + 1.0 * 8);
}

TEST(TraceIo, ScanTraceMatchesInstanceStats) {
  Instance inst = sampleWorkload(120, 9);
  std::stringstream buffer;
  writeTrace(inst, buffer, TraceFormat::kJsonl);
  TraceStats stats = scanTrace(buffer, TraceFormat::kJsonl);
  EXPECT_EQ(stats.count, inst.size());
  // Same doubles, same min/max reductions: exact agreement.
  EXPECT_EQ(stats.minDuration, inst.minDuration());
  EXPECT_EQ(stats.maxDuration, inst.maxDuration());
  EXPECT_EQ(stats.mu, inst.durationRatio());
  EXPECT_DOUBLE_EQ(stats.demand, inst.demand());
}

TEST(TraceIo, EmptyTraceIsValid) {
  std::istringstream in(kCsvHeader);
  Instance inst = readTraceInstance(in, TraceFormat::kCsv);
  EXPECT_TRUE(inst.empty());
  std::istringstream in2(kJsonlHeader);
  TraceStats stats = scanTrace(in2, TraceFormat::kJsonl);
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.mu, 1.0);
}

TEST(TraceIo, MissingFileErrors) {
  EXPECT_THROW(loadTraceInstance("/nonexistent/x.csv"), TraceError);
  EXPECT_THROW(scanTrace("/nonexistent/x.jsonl"), TraceError);
  EXPECT_THROW(TraceArrivalSource("/nonexistent/x.csv"), TraceError);
}

}  // namespace
}  // namespace cdbp
