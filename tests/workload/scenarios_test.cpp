#include "workload/scenarios.hpp"

#include <gtest/gtest.h>

#include "core/epsilon.hpp"

namespace cdbp {
namespace {

TEST(CloudGaming, ProducesRequestedSessionCount) {
  CloudGamingSpec spec;
  spec.numSessions = 500;
  Instance inst = cloudGamingSessions(spec, 1);
  EXPECT_EQ(inst.size(), 500u);
}

TEST(CloudGaming, SessionLengthsRespectPlatformCaps) {
  CloudGamingSpec spec;
  spec.numSessions = 400;
  Instance inst = cloudGamingSessions(spec, 2);
  for (const Item& r : inst.items()) {
    EXPECT_GE(r.duration(), spec.minSessionMinutes - 1e-9);
    EXPECT_LE(r.duration(), spec.maxSessionMinutes + 1e-9);
  }
  EXPECT_LE(inst.durationRatio(),
            spec.maxSessionMinutes / spec.minSessionMinutes + 1e-9);
}

TEST(CloudGaming, SharesComeFromFlavorList) {
  CloudGamingSpec spec;
  spec.numSessions = 200;
  spec.instanceShares = {0.5, 1.0};
  Instance inst = cloudGamingSessions(spec, 3);
  for (const Item& r : inst.items()) {
    EXPECT_TRUE(approxEq(r.size, 0.5) || approxEq(r.size, 1.0));
  }
}

TEST(CloudGaming, DeterministicUnderSeed) {
  CloudGamingSpec spec;
  spec.numSessions = 100;
  Instance a = cloudGamingSessions(spec, 7);
  Instance b = cloudGamingSessions(spec, 7);
  for (ItemId i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(BatchAnalytics, MaterializesTemplatesTimesPeriods) {
  BatchAnalyticsSpec spec;
  spec.numTemplates = 10;
  spec.numPeriods = 5;
  Instance inst = batchAnalyticsJobs(spec, 1);
  EXPECT_EQ(inst.size(), 50u);
}

TEST(BatchAnalytics, RunsOfATemplateShareDuration) {
  BatchAnalyticsSpec spec;
  spec.numTemplates = 3;
  spec.numPeriods = 4;
  Instance inst = batchAnalyticsJobs(spec, 2);
  // Items are emitted template-major: 4 consecutive runs per template.
  for (std::size_t tmpl = 0; tmpl < 3; ++tmpl) {
    double d0 = inst[static_cast<ItemId>(tmpl * 4)].duration();
    for (std::size_t p = 1; p < 4; ++p) {
      EXPECT_NEAR(inst[static_cast<ItemId>(tmpl * 4 + p)].duration(), d0, 1e-9);
    }
  }
}

TEST(BatchAnalytics, RunsRecurOncePerPeriod) {
  BatchAnalyticsSpec spec;
  spec.numTemplates = 1;
  spec.numPeriods = 6;
  spec.jitterFraction = 0.0;
  Instance inst = batchAnalyticsJobs(spec, 3);
  for (std::size_t p = 1; p < 6; ++p) {
    double gap = inst[static_cast<ItemId>(p)].arrival() -
                 inst[static_cast<ItemId>(p - 1)].arrival();
    EXPECT_NEAR(gap, spec.periodMinutes, 1e-9);
  }
}

TEST(BatchAnalytics, DurationsStayWithinPeriodFractions) {
  BatchAnalyticsSpec spec;
  Instance inst = batchAnalyticsJobs(spec, 4);
  for (const Item& r : inst.items()) {
    EXPECT_GE(r.duration(), spec.periodMinutes * spec.minRunFraction - 1e-9);
    EXPECT_LE(r.duration(), spec.periodMinutes * spec.maxRunFraction + 1e-9);
  }
}

}  // namespace
}  // namespace cdbp
