// End-to-end and robustness tests for the sharded serve daemon
// (DESIGN.md §13).
//
// Most tests adopt one end of a socketpair into the server's event loop —
// no filesystem or port allocation — and drive the other end with
// serve::Client. Single-loop servers where determinism matters; the
// multi-shard tests at the bottom run 4 loop threads and are the tsan
// preset's shard-handoff / concurrent-scrape / drain-under-load coverage.
// Listener coverage (Unix path + loopback TCP) sits in between.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "online/policy_factory.hpp"
#include "serve/client.hpp"
#include "sim/streaming.hpp"
#include "telemetry/telemetry.hpp"

namespace cdbp::serve {
namespace {

constexpr double kMinDuration = 1.0;
constexpr double kMu = 8.0;

HelloFrame makeHello(const std::string& tenant, const std::string& spec) {
  HelloFrame hello;
  hello.version = kProtocolVersion;
  hello.engine = 0;
  hello.minDuration = kMinDuration;
  hello.mu = kMu;
  hello.seed = 42;
  hello.tenant = tenant;
  hello.policySpec = spec;
  return hello;
}

ServerOptions singleLoop() {
  return ServerOptionsBuilder().loopThreads(1).build();
}

/// Server + one adopted socketpair connection, torn down in order.
struct Harness {
  explicit Harness(ServerOptions options = singleLoop()) : server(options) {
    server.start();
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    clientFd = fds[0];
    server.adoptConnection(fds[1]);
  }

  /// Adds another adopted connection, returning the client-side fd.
  int adoptAnother() {
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    server.adoptConnection(fds[1]);
    return fds[0];
  }

  Server server;
  int clientFd = -1;
};

void waitFor(const std::function<bool()>& done) {
  for (int i = 0; i < 2000; ++i) {
    if (done()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "condition not reached within the polling budget";
}

TEST(ServeServer, OptionsValidation) {
  // loopThreads 0 resolves to hardware concurrency (floor 1).
  ServerOptions resolved = ServerOptions{}.validated();
  EXPECT_GE(resolved.loopThreads, 1u);

  ServerOptions bad;
  bad.loopThreads = 257;
  EXPECT_THROW(bad.validated(), std::invalid_argument);
  bad = ServerOptions{};
  bad.writeBufferLimit = 0;
  EXPECT_THROW(bad.validated(), std::invalid_argument);
  bad = ServerOptions{};
  bad.maxFramePayload = 8;
  EXPECT_THROW(bad.validated(), std::invalid_argument);
  bad = ServerOptions{};
  bad.drainTimeoutNanos = 0;
  EXPECT_THROW(bad.validated(), std::invalid_argument);

  EXPECT_THROW(ServerOptionsBuilder().listenOn("tcp:nohost"),
               std::invalid_argument);
  ServerOptions built = ServerOptionsBuilder()
                            .listenOn("unix:/tmp/x.sock")
                            .loopThreads(4)
                            .writeBufferLimit(1024)
                            .build();
  EXPECT_EQ(built.loopThreads, 4u);
  ASSERT_EQ(built.listen.size(), 1u);
  EXPECT_EQ(built.listen[0].path, "/tmp/x.sock");
}

TEST(ServeServer, EndToEndSessionMatchesLocalEngine) {
  Harness h;
  Client client(h.clientFd);

  HelloOkFrame ok = client.hello(makeHello("tenant-a", "cdt-ff"));
  EXPECT_EQ(ok.version, kProtocolVersion);
  EXPECT_EQ(client.negotiatedVersion(), kProtocolVersion);
  EXPECT_GT(ok.tenantId, 0u);

  // The same item sequence through a local StreamEngine: the served
  // placements must match decision for decision.
  PolicyContext context;
  context.minDuration = kMinDuration;
  context.mu = kMu;
  context.seed = 42;
  PolicyPtr local = makePolicy("cdt-ff", context);
  StreamEngine engine(*local);
  EXPECT_EQ(ok.policyName, local->name());

  std::vector<StreamItem> items;
  for (int i = 0; i < 200; ++i) {
    double arrival = 0.25 * i;
    double size = 0.1 + 0.13 * static_cast<double>(i % 7);
    double departure = arrival + kMinDuration + (i % 11);
    items.push_back(StreamItem{size, arrival, departure});
  }
  for (const StreamItem& item : items) {
    PlacedFrame served = client.place(item.size, item.arrival, item.departure);
    StreamEngine::Placement expected = engine.place(item);
    ASSERT_EQ(served.item, expected.item);
    ASSERT_EQ(served.bin, expected.bin);
    ASSERT_EQ(served.openedNewBin != 0, expected.openedNewBin);
    ASSERT_EQ(served.category, expected.category);
  }

  StatsOkFrame stats = client.stats();
  EXPECT_EQ(stats.items, engine.itemsPlaced());
  EXPECT_EQ(stats.binsOpened, engine.binsOpened());
  EXPECT_EQ(stats.openBins, engine.openBins());
  EXPECT_EQ(stats.pendingDepartures, engine.pendingDepartures());

  DepartOkFrame departed = client.departUntil(60.0);
  std::size_t localDrained = engine.drainUntil(60.0);
  EXPECT_EQ(departed.drained, localDrained);
  EXPECT_EQ(departed.openBins, engine.openBins());

  DrainOkFrame drained = client.drain();
  StreamResult result = engine.finish();
  EXPECT_EQ(drained.items, result.items);
  EXPECT_EQ(drained.totalUsage, result.totalUsage);
  EXPECT_EQ(drained.binsOpened, result.binsOpened);
  EXPECT_EQ(drained.maxOpenBins, result.maxOpenBins);
  EXPECT_EQ(drained.categoriesUsed, result.categoriesUsed);
  EXPECT_EQ(drained.lb3, result.lb3);
  EXPECT_EQ(drained.peakOpenItems, result.peakOpenItems);

  ServerStats serverStats = h.server.stats();
  EXPECT_EQ(serverStats.placements, items.size());
  EXPECT_EQ(serverStats.sessionsOpened, 1u);
  EXPECT_EQ(serverStats.sessionsFinished, 1u);
  EXPECT_EQ(serverStats.shedConnections, 0u);

  std::vector<TenantSnapshot> tenants = h.server.tenants();
  ASSERT_EQ(tenants.size(), 1u);
  EXPECT_EQ(tenants[0].name, "tenant-a");
  EXPECT_TRUE(tenants[0].finished);
}

TEST(ServeServer, TypedErrorsKeepTheConnectionServing) {
  Harness h;
  Client client(h.clientFd);

  // PLACE before HELLO.
  {
    std::vector<std::uint8_t> bytes;
    appendPlace(bytes, PlaceFrame{0.5, 0.0, 2.0});
    client.sendRaw(bytes);
    OwnedFrame reply = client.readFrame();
    ASSERT_EQ(reply.type, FrameType::kError);
    ErrorFrame error;
    ASSERT_TRUE(decodeError(reply.view(), error));
    EXPECT_EQ(error.code, ErrorCode::kUnknownTenant);
  }

  // BATCH before HELLO: typed rejection too, no disconnect.
  {
    BatchFrame batch;
    BatchOp op;
    op.place = PlaceFrame{0.5, 0.0, 2.0};
    batch.ops = {op};
    std::vector<std::uint8_t> bytes;
    appendBatch(bytes, batch);
    client.sendRaw(bytes);
    OwnedFrame reply = client.readFrame();
    ASSERT_EQ(reply.type, FrameType::kError);
    ErrorFrame error;
    ASSERT_TRUE(decodeError(reply.view(), error));
    EXPECT_EQ(error.code, ErrorCode::kUnknownTenant);
  }

  // Unknown frame type.
  {
    std::vector<std::uint8_t> bytes = {0x01, 0x00, 0x00, 0x00, 0x7E};
    client.sendRaw(bytes);
    OwnedFrame reply = client.readFrame();
    ErrorFrame error;
    ASSERT_TRUE(decodeError(reply.view(), error));
    EXPECT_EQ(error.code, ErrorCode::kUnknownFrameType);
  }

  // Zero-length frame.
  {
    std::vector<std::uint8_t> bytes = {0x00, 0x00, 0x00, 0x00};
    client.sendRaw(bytes);
    OwnedFrame reply = client.readFrame();
    ErrorFrame error;
    ASSERT_TRUE(decodeError(reply.view(), error));
    EXPECT_EQ(error.code, ErrorCode::kMalformedFrame);
  }

  // Truncated HELLO body under a self-consistent length prefix.
  {
    std::vector<std::uint8_t> bytes = {0x03, 0x00, 0x00, 0x00,
                                       0x01,  // kHello
                                       0x01, 0x00};
    client.sendRaw(bytes);
    OwnedFrame reply = client.readFrame();
    ErrorFrame error;
    ASSERT_TRUE(decodeError(reply.view(), error));
    EXPECT_EQ(error.code, ErrorCode::kMalformedFrame);
  }

  // Version below the floor: v0 is rejected (anything >= 1 negotiates).
  {
    HelloFrame hello = makeHello("tenant", "ff");
    hello.version = 0;
    EXPECT_THROW(
        {
          try {
            client.hello(hello);
          } catch (const ServeError& e) {
            EXPECT_EQ(e.code(), ErrorCode::kProtocolVersion);
            throw;
          }
        },
        ServeError);
  }

  // Bad policy spec.
  {
    EXPECT_THROW(
        {
          try {
            client.hello(makeHello("tenant", "no-such-policy(rho=banana)"));
          } catch (const ServeError& e) {
            EXPECT_EQ(e.code(), ErrorCode::kBadPolicySpec);
            throw;
          }
        },
        ServeError);
  }

  // After all of that the connection still opens a working session.
  HelloOkFrame ok = client.hello(makeHello("tenant", "ff"));
  EXPECT_GT(ok.tenantId, 0u);

  // Duplicate HELLO.
  EXPECT_THROW(
      {
        try {
          client.hello(makeHello("tenant-again", "bf"));
        } catch (const ServeError& e) {
          EXPECT_EQ(e.code(), ErrorCode::kDuplicateHello);
          throw;
        }
      },
      ServeError);

  // Bad item: non-positive size is rejected by the engine, session intact.
  EXPECT_THROW(
      {
        try {
          client.place(-1.0, 0.0, 2.0);
        } catch (const ServeError& e) {
          EXPECT_EQ(e.code(), ErrorCode::kBadItem);
          throw;
        }
      },
      ServeError);

  // Accepted placement, then an out-of-order DEPART behind the watermark.
  PlacedFrame placed = client.place(0.5, 5.0, 8.0);
  EXPECT_EQ(placed.bin, 0);
  EXPECT_THROW(
      {
        try {
          client.departUntil(1.0);
        } catch (const ServeError& e) {
          EXPECT_EQ(e.code(), ErrorCode::kOutOfOrder);
          throw;
        }
      },
      ServeError);

  // Out-of-order PLACE behind the watermark.
  EXPECT_THROW(
      {
        try {
          client.place(0.5, 1.0, 9.0);
        } catch (const ServeError& e) {
          EXPECT_EQ(e.code(), ErrorCode::kOutOfOrder);
          throw;
        }
      },
      ServeError);

  // The session still works and finishes cleanly.
  DrainOkFrame drained = client.drain();
  EXPECT_EQ(drained.items, 1u);

  // Requests after DRAIN are typed rejections, not disconnects.
  EXPECT_THROW(
      {
        try {
          client.place(0.5, 9.0, 12.0);
        } catch (const ServeError& e) {
          EXPECT_EQ(e.code(), ErrorCode::kSessionFinished);
          throw;
        }
      },
      ServeError);

  ServerStats stats = h.server.stats();
  EXPECT_GE(stats.errorsSent, 10u);
  EXPECT_EQ(stats.openConnections, 1u);  // never dropped
}

TEST(ServeServer, V1ClientNegotiatesDownAndKeepsWorking) {
  Harness h;
  Client client(h.clientFd);

  HelloFrame hello = makeHello("legacy", "ff");
  hello.version = 1;
  HelloOkFrame ok = client.hello(hello);
  EXPECT_EQ(ok.version, 1);
  EXPECT_EQ(client.negotiatedVersion(), 1);

  // The whole v1 surface keeps working.
  PlacedFrame placed = client.place(0.5, 0.0, 4.0);
  EXPECT_EQ(placed.bin, 0);
  EXPECT_EQ(client.departUntil(2.0).openBins, 1u);

  // A v2 frame on a v1 session is a typed rejection, not a disconnect.
  {
    BatchFrame batch;
    BatchOp op;
    op.place = PlaceFrame{0.25, 2.0, 6.0};
    batch.ops = {op};
    std::vector<std::uint8_t> bytes;
    appendBatch(bytes, batch);
    client.sendRaw(bytes);
    OwnedFrame reply = client.readFrame();
    ASSERT_EQ(reply.type, FrameType::kError);
    ErrorFrame error;
    ASSERT_TRUE(decodeError(reply.view(), error));
    EXPECT_EQ(error.code, ErrorCode::kUnsupportedVersion);
  }

  // The session survived the rejection; the pipelined wrapper falls back
  // to raw PLACE frames on a v1 session.
  client.queuePlace(0.25, 3.0, 7.0);
  client.queuePlace(0.25, 4.0, 8.0);
  client.flushQueued();
  EXPECT_EQ(client.readPlaced().item, 1u);
  EXPECT_EQ(client.readPlaced().item, 2u);
  DrainOkFrame drained = client.drain();
  EXPECT_EQ(drained.items, 3u);
  EXPECT_EQ(h.server.stats().batches, 0u);
}

TEST(ServeServer, FutureClientVersionCapsAtV2) {
  Harness h;
  Client client(h.clientFd);
  HelloFrame hello = makeHello("from-the-future", "ff");
  hello.version = 9;
  HelloOkFrame ok = client.hello(hello);
  EXPECT_EQ(ok.version, kProtocolVersion);
  BatchOkFrame batched =
      client.batch().place(0.5, 0.0, 2.0).place(0.25, 0.5, 3.0).send();
  EXPECT_EQ(batched.failed, 0);
  EXPECT_EQ(batched.results.size(), 2u);
  client.drain();
}

TEST(ServeServer, BatchMatchesIndividualRequests) {
  Harness h;
  Client batched(h.clientFd);
  Client individual(h.adoptAnother());
  batched.hello(makeHello("batched", "cdt-ff"));
  individual.hello(makeHello("individual", "cdt-ff"));

  BatchOkFrame ok = batched.batch()
                        .place(0.5, 0.0, 4.0)
                        .place(0.25, 1.0, 3.0)
                        .depart(3.5)
                        .place(0.75, 4.0, 9.0)
                        .send();
  ASSERT_EQ(ok.results.size(), 4u);
  EXPECT_EQ(ok.failed, 0);

  PlacedFrame p0 = individual.place(0.5, 0.0, 4.0);
  PlacedFrame p1 = individual.place(0.25, 1.0, 3.0);
  DepartOkFrame d = individual.departUntil(3.5);
  PlacedFrame p2 = individual.place(0.75, 4.0, 9.0);

  EXPECT_EQ(ok.results[0].kind, kBatchOpPlace);
  EXPECT_EQ(ok.results[0].placed.bin, p0.bin);
  EXPECT_EQ(ok.results[1].placed.bin, p1.bin);
  EXPECT_EQ(ok.results[2].kind, kBatchOpDepart);
  EXPECT_EQ(ok.results[2].depart.drained, d.drained);
  EXPECT_EQ(ok.results[2].depart.openBins, d.openBins);
  EXPECT_EQ(ok.results[3].placed.bin, p2.bin);
  EXPECT_EQ(ok.results[3].placed.item, p2.item);

  DrainOkFrame drainedBatch = batched.drain();
  DrainOkFrame drainedIndividual = individual.drain();
  EXPECT_EQ(drainedBatch.items, drainedIndividual.items);
  EXPECT_EQ(drainedBatch.totalUsage, drainedIndividual.totalUsage);
  EXPECT_GE(h.server.stats().batches, 1u);
}

TEST(ServeServer, BatchMidFailureReturnsCompletedPrefix) {
  Harness h;
  Client client(h.clientFd);
  client.hello(makeHello("partial", "ff"));

  BatchOkFrame ok = client.batch()
                        .place(0.5, 0.0, 4.0)
                        .place(-1.0, 1.0, 3.0)  // rejected: bad size
                        .place(0.25, 2.0, 5.0)  // never runs
                        .send();
  EXPECT_EQ(ok.failed, 1);
  EXPECT_EQ(ok.failedIndex, 1u);
  ASSERT_EQ(ok.results.size(), 1u);  // the completed prefix only
  EXPECT_EQ(ok.errorCode, ErrorCode::kBadItem);

  // The session survives a non-fatal mid-batch failure.
  PlacedFrame placed = client.place(0.25, 2.0, 5.0);
  EXPECT_EQ(placed.item, 1u);
  DrainOkFrame drained = client.drain();
  EXPECT_EQ(drained.items, 2u);
}

TEST(ServeServer, BatchBuilderRefusesOversizeAndV1Sessions) {
  Harness h;
  Client client(h.clientFd);

  // Before hello() there is no negotiated version: send() must refuse.
  EXPECT_THROW(client.batch().place(0.5, 0.0, 1.0).send(), std::logic_error);

  client.hello(makeHello("caps", "ff"));
  Client::Batch batch = client.batch();
  for (std::size_t i = 0; i <= kMaxBatchOps; ++i) {
    batch.place(0.1, static_cast<double>(i), static_cast<double>(i) + 1.0);
  }
  EXPECT_EQ(batch.size(), kMaxBatchOps + 1);
  EXPECT_THROW(batch.send(), std::logic_error);
  client.drain();
}

TEST(ServeServer, PipelinedWrapperMatchesV1PlacePath) {
  Harness h;
  Client v2(h.clientFd);
  Client v1(h.adoptAnother());
  v2.hello(makeHello("wrapper-v2", "cdt-ff"));
  HelloFrame legacy = makeHello("wrapper-v1", "cdt-ff");
  legacy.version = 1;
  v1.hello(legacy);

  // Identical queue/flush/read call sites; v2 travels as BATCH frames,
  // v1 as raw PLACE frames. Placements must agree decision for decision.
  std::vector<PlacedFrame> fromV2;
  std::vector<PlacedFrame> fromV1;
  constexpr std::size_t kItems = 500;  // > one burst, < kMaxBatchOps
  for (std::size_t i = 0; i < kItems; ++i) {
    double arrival = 0.1 * static_cast<double>(i);
    double size = 0.05 + 0.11 * static_cast<double>(i % 9);
    v2.queuePlace(size, arrival, arrival + 3.0);
    v1.queuePlace(size, arrival, arrival + 3.0);
  }
  v2.flushQueued();
  v1.flushQueued();
  while (v2.queued() > 0) fromV2.push_back(v2.readPlaced());
  while (v1.queued() > 0) fromV1.push_back(v1.readPlaced());

  ASSERT_EQ(fromV2.size(), kItems);
  ASSERT_EQ(fromV1.size(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(fromV2[i].item, fromV1[i].item) << "item " << i;
    ASSERT_EQ(fromV2[i].bin, fromV1[i].bin) << "item " << i;
    ASSERT_EQ(fromV2[i].openedNewBin, fromV1[i].openedNewBin) << "item " << i;
    ASSERT_EQ(fromV2[i].category, fromV1[i].category) << "item " << i;
  }
  DrainOkFrame drainedV2 = v2.drain();
  DrainOkFrame drainedV1 = v1.drain();
  EXPECT_EQ(drainedV2.totalUsage, drainedV1.totalUsage);
  EXPECT_EQ(drainedV2.binsOpened, drainedV1.binsOpened);
  EXPECT_GE(h.server.stats().batches, 1u);
}

TEST(ServeServer, PipelinedFailureSurfacesAfterCompletedPrefix) {
  Harness h;
  Client client(h.clientFd);
  client.hello(makeHello("pipeline-fail", "ff"));

  client.queuePlace(0.5, 0.0, 4.0);
  client.queuePlace(-1.0, 1.0, 3.0);  // will be rejected mid-batch
  client.queuePlace(0.25, 2.0, 5.0);  // never runs server-side
  client.flushQueued();

  PlacedFrame first = client.readPlaced();
  EXPECT_EQ(first.item, 0u);
  EXPECT_THROW(
      {
        try {
          client.readPlaced();
        } catch (const ServeError& e) {
          EXPECT_EQ(e.code(), ErrorCode::kBadItem);
          throw;
        }
      },
      ServeError);
  EXPECT_EQ(client.queued(), 0u);  // unexecuted ops owe no replies
  DrainOkFrame drained = client.drain();
  EXPECT_EQ(drained.items, 1u);
}

TEST(ServeServer, OversizedFramePrefixShedsTheConnection) {
  Harness h;
  Client client(h.clientFd);
  // Length prefix far above the cap: the server cannot resync past an
  // untrusted length, so it answers kOversizedFrame and closes.
  std::vector<std::uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0x7F, 0x02};
  client.sendRaw(bytes);
  OwnedFrame reply = client.readFrame();
  ErrorFrame error;
  ASSERT_TRUE(decodeError(reply.view(), error));
  EXPECT_EQ(error.code, ErrorCode::kOversizedFrame);
  EXPECT_THROW(client.readFrame(), std::runtime_error);  // EOF follows
  waitFor([&] { return h.server.stats().openConnections == 0; });
}

TEST(ServeServer, BackpressureBoundsServerMemory) {
  ServerOptions options = singleLoop();
  options.writeBufferLimit = 4096;
  Harness h(options);
  Client client(h.clientFd);
  client.hello(makeHello("flood", "ff"));

  // Stop reading replies and flood PLACE frames until the transport
  // clogs. The server must throttle: replies buffer up to the limit, then
  // frame processing stops, then reading stops — memory stays bounded no
  // matter how much the client sends.
  ASSERT_EQ(fcntl(h.clientFd, F_SETFL,
                  fcntl(h.clientFd, F_GETFL, 0) | O_NONBLOCK),
            0);
  std::vector<std::uint8_t> frame;
  appendPlace(frame, PlaceFrame{0.001, 100.0, 200.0});
  std::size_t queuedFrames = 0;
  std::size_t partial = 0;  // bytes of a frame already on the wire
  while (queuedFrames < 200000) {
    ssize_t n = send(h.clientFd, frame.data() + partial,
                     frame.size() - partial, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
      break;  // both kernel buffers and the server's bound are full
    }
    partial += static_cast<std::size_t>(n);
    if (partial == frame.size()) {
      partial = 0;
      ++queuedFrames;
    }
  }
  ASSERT_GT(queuedFrames, 0u);

  // The flood throttled the connection at least once, and the write
  // buffer never grew past the limit plus one reply frame.
  waitFor([&] { return h.server.stats().throttleEvents >= 1; });
  const std::size_t replyBound = 64;  // PLACED/error replies are tiny
  EXPECT_LE(h.server.stats().peakWriteBuffered,
            options.writeBufferLimit + replyBound);
  EXPECT_EQ(h.server.stats().shedConnections, 0u);

  // Resume reading: every queued request gets its reply and the session
  // finishes normally.
  int flags = fcntl(h.clientFd, F_GETFL, 0);
  ASSERT_EQ(fcntl(h.clientFd, F_SETFL, flags & ~O_NONBLOCK), 0);
  for (std::size_t i = 0; i < queuedFrames; ++i) {
    OwnedFrame reply = client.expectFrame(FrameType::kPlaced);
    PlacedFrame placed;
    ASSERT_TRUE(decodePlaced(reply.view(), placed));
  }
  if (partial > 0) {
    // A frame was cut mid-write when the transport clogged. The server
    // has drained by now, so finish it (blocking) to restore framing.
    std::vector<std::uint8_t> rest(frame.begin() +
                                       static_cast<std::ptrdiff_t>(partial),
                                   frame.end());
    client.sendRaw(rest);
    ++queuedFrames;
    OwnedFrame reply = client.expectFrame(FrameType::kPlaced);
    PlacedFrame placed;
    ASSERT_TRUE(decodePlaced(reply.view(), placed));
  }
  DrainOkFrame drained = client.drain();
  EXPECT_EQ(drained.items, queuedFrames);
  EXPECT_LE(h.server.stats().peakWriteBuffered,
            options.writeBufferLimit + replyBound);
}

TEST(ServeServer, GracefulDrainAnswersInFlightRequestsAndExits) {
  Harness h;
  Client client(h.clientFd);
  client.hello(makeHello("draining", "bf"));

  // Pipeline a burst, then request the drain before reading anything:
  // every fully-received request must still be answered.
  constexpr std::size_t kBurst = 500;
  for (std::size_t i = 0; i < kBurst; ++i) {
    double arrival = 0.01 * static_cast<double>(i);
    client.queuePlace(0.2, arrival, arrival + 5.0);
  }
  client.flushQueued();
  // Make sure the burst reached the loop before the drain flag does.
  waitFor([&] { return h.server.stats().placements >= 1; });
  h.server.requestDrain();

  for (std::size_t i = 0; i < kBurst; ++i) {
    PlacedFrame placed = client.readPlaced();
    EXPECT_EQ(placed.item, i);
  }
  // After the replies flush the server closes and the loop exits.
  EXPECT_THROW(client.readFrame(), std::runtime_error);
  h.server.join();
  ServerStats stats = h.server.stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.placements, kBurst);
  EXPECT_FALSE(h.server.running());
}

TEST(ServeServer, ScrapeReturnsLiveTelemetryDuringLoad) {
  Harness h;
  Client client(h.clientFd);
  HelloOkFrame ok = client.hello(makeHello("scraped", "cd-ff"));
  for (int i = 0; i < 50; ++i) {
    client.place(0.3, static_cast<double>(i), static_cast<double>(i) + 3.0);
  }
  std::string text = client.scrape();
  if (telemetry::kEnabled) {
    // Live counters from this very session are visible in the scrape.
    EXPECT_NE(text.find("cdbp_serve_placements"), std::string::npos);
    EXPECT_NE(text.find("cdbp_serve_frames_rx"), std::string::npos);
    // Per-tenant counters (v2): serve.tenant.<id>.placements et al.
    std::string prefix =
        "cdbp_serve_tenant_" + std::to_string(ok.tenantId) + "_";
    EXPECT_NE(text.find(prefix + "placements"), std::string::npos);
    EXPECT_NE(text.find(prefix + "bytes"), std::string::npos);
  } else {
    // Telemetry compiled out: the scrape endpoint still answers.
    EXPECT_TRUE(text.empty());
  }
  client.drain();
}

TEST(ServeServer, TenantsAreIsolated) {
  Harness h;
  Client a(h.clientFd);
  Client b(h.adoptAnother());

  a.hello(makeHello("tenant-a", "ff"));
  b.hello(makeHello("tenant-b", "ff"));

  // Interleaved sessions with identical items: isolation means each
  // tenant's bins fill independently (same decisions in both sessions),
  // not shared.
  for (int i = 0; i < 20; ++i) {
    double arrival = static_cast<double>(i);
    PlacedFrame fromA = a.place(0.4, arrival, arrival + 50.0);
    PlacedFrame fromB = b.place(0.4, arrival, arrival + 50.0);
    ASSERT_EQ(fromA.bin, fromB.bin) << "sessions diverged at item " << i;
  }
  DrainOkFrame drainedA = a.drain();
  DrainOkFrame drainedB = b.drain();
  EXPECT_EQ(drainedA.binsOpened, drainedB.binsOpened);
  EXPECT_EQ(drainedA.totalUsage, drainedB.totalUsage);

  std::vector<TenantSnapshot> tenants = h.server.tenants();
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].name, "tenant-a");
  EXPECT_EQ(tenants[1].name, "tenant-b");
  EXPECT_EQ(tenants[0].items, 20u);
  EXPECT_EQ(tenants[1].items, 20u);
}

TEST(ServeServer, HalfCloseFlushesPendingRepliesBeforeClosing) {
  Harness h;
  Client client(h.clientFd);
  client.hello(makeHello("half-close", "ff"));
  for (int i = 0; i < 10; ++i) {
    client.queuePlace(0.1, static_cast<double>(i), static_cast<double>(i) + 2.0);
  }
  client.flushQueued();
  // Shut down the write side only: the server must answer what it already
  // received, then close.
  ASSERT_EQ(shutdown(client.fd(), SHUT_WR), 0);
  for (std::size_t i = 0; i < 10; ++i) {
    PlacedFrame placed = client.readPlaced();
    EXPECT_EQ(placed.item, i);
  }
  EXPECT_THROW(client.readFrame(), std::runtime_error);
  waitFor([&] { return h.server.stats().openConnections == 0; });
}

TEST(ServeServer, UnixListenerAcceptsAndServes) {
  std::string path = testing::TempDir() + "cdbp_serve_" +
                     std::to_string(::getpid()) + ".sock";
  Server server(
      ServerOptionsBuilder().listenOn("unix:" + path).loopThreads(1).build());
  server.start();

  Client client = Client::connectUnix(path);
  HelloOkFrame ok = client.hello(makeHello("via-unix", "min-ext"));
  EXPECT_GT(ok.tenantId, 0u);
  PlacedFrame placed = client.place(0.5, 0.0, 4.0);
  EXPECT_EQ(placed.bin, 0);
  DrainOkFrame drained = client.drain();
  EXPECT_EQ(drained.items, 1u);
  server.stop();
  server.join();
  ::unlink(path.c_str());
}

TEST(ServeServer, TcpListenerBindsEphemeralPortAndServes) {
  Server server(ServerOptionsBuilder()
                    .listenOn("tcp:127.0.0.1:0")
                    .loopThreads(2)
                    .build());
  server.start();
  ASSERT_GT(server.tcpPort(), 0);

  Client client = Client::connectTcp("127.0.0.1", server.tcpPort());
  client.hello(makeHello("via-tcp", "ff"));
  PlacedFrame placed = client.place(0.25, 0.0, 2.0);
  EXPECT_EQ(placed.bin, 0);
  EXPECT_EQ(server.stats().connectionsAccepted, 1u);
  client.drain();
  server.stop();
  server.join();
}

// --- multi-shard coverage (the tsan preset's priority filter pulls
// these in via the 'Serve' name fragment) ----------------------------------

TEST(ServeServer, ShardHandoffDistributesConnectionsRoundRobin) {
  Server server(ServerOptionsBuilder().loopThreads(4).build());
  server.start();

  std::vector<Client> clients;
  for (int i = 0; i < 8; ++i) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    server.adoptConnection(fds[1]);
    clients.emplace_back(fds[0]);
  }
  // Drive every session concurrently: the handoff queue and the eventfd
  // wake path see real cross-thread traffic.
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    threads.emplace_back([&, i] {
      Client& client = clients[i];
      client.hello(makeHello("shard-" + std::to_string(i), "ff"));
      for (int j = 0; j < 50; ++j) {
        client.place(0.2, static_cast<double>(j),
                     static_cast<double>(j) + 4.0);
      }
      client.drain();
    });
  }
  for (std::thread& t : threads) t.join();

  // 8 connections over 4 shards round-robin: exactly 2 each.
  std::vector<std::uint64_t> perShard = server.shardConnectionCounts();
  ASSERT_EQ(perShard.size(), 4u);
  for (std::size_t s = 0; s < perShard.size(); ++s) {
    EXPECT_EQ(perShard[s], 2u) << "shard " << s;
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.placements, 8u * 50u);
  EXPECT_EQ(stats.sessionsFinished, 8u);
  server.stop();
  server.join();
}

TEST(ServeServer, MultiShardHalfCloseFlushesEveryConnection) {
  Server server(ServerOptionsBuilder().loopThreads(4).build());
  server.start();

  std::vector<Client> clients;
  for (int i = 0; i < 8; ++i) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    server.adoptConnection(fds[1]);
    clients.emplace_back(fds[0]);
  }
  for (std::size_t i = 0; i < clients.size(); ++i) {
    clients[i].hello(makeHello("hc-" + std::to_string(i), "ff"));
    for (int j = 0; j < 10; ++j) {
      clients[i].queuePlace(0.1, static_cast<double>(j),
                            static_cast<double>(j) + 2.0);
    }
    clients[i].flushQueued();
    ASSERT_EQ(shutdown(clients[i].fd(), SHUT_WR), 0);
  }
  for (Client& client : clients) {
    for (std::size_t j = 0; j < 10; ++j) {
      PlacedFrame placed = client.readPlaced();
      EXPECT_EQ(placed.item, j);
    }
    EXPECT_THROW(client.readFrame(), std::runtime_error);
  }
  waitFor([&] { return server.stats().openConnections == 0; });
  EXPECT_EQ(server.stats().placements, 8u * 10u);
  server.stop();
  server.join();
}

TEST(ServeServer, ConcurrentScrapeWhilePlacing) {
  Server server(ServerOptionsBuilder().loopThreads(4).build());
  server.start();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapesDone{0};
  std::vector<std::thread> threads;
  // Two placer sessions and two scraper sessions, all concurrent, each
  // pinned to a different shard by the round-robin router.
  for (int i = 0; i < 2; ++i) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    server.adoptConnection(fds[1]);
    threads.emplace_back([fd = fds[0], i, &stop] {
      Client client(fd);
      client.hello(makeHello("placer-" + std::to_string(i), "cdt-ff"));
      double arrival = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        client.place(0.3, arrival, arrival + 5.0);
        arrival += 0.25;
      }
      client.drain();
    });
  }
  for (int i = 0; i < 2; ++i) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    server.adoptConnection(fds[1]);
    threads.emplace_back([fd = fds[0], &stop, &scrapesDone] {
      Client client(fd);
      int scrapes = 0;
      while (!stop.load(std::memory_order_relaxed) && scrapes < 200) {
        std::string text = client.scrape();
        if (telemetry::kEnabled) {
          EXPECT_FALSE(text.empty());
        }
        ++scrapes;
        scrapesDone.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();

  EXPECT_GT(scrapesDone.load(), 0u);
  EXPECT_GT(server.stats().placements, 0u);
  server.stop();
  server.join();
}

TEST(ServeServer, DrainUnderLoadAcrossShards) {
  Server server(ServerOptionsBuilder().loopThreads(4).build());
  server.start();

  std::atomic<std::uint64_t> clientReads{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    server.adoptConnection(fds[1]);
    threads.emplace_back([fd = fds[0], i, &clientReads] {
      try {
        Client client(fd);
        client.hello(makeHello("load-" + std::to_string(i), "ff"));
        double arrival = 0;
        while (true) {
          for (int j = 0; j < 64; ++j) {
            client.queuePlace(0.2, arrival, arrival + 5.0);
            arrival += 0.01;
          }
          client.flushQueued();
          while (client.queued() > 0) {
            client.readPlaced();
            clientReads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } catch (const std::exception&) {
        // The drain closed the connection mid-burst: expected.
      }
    });
  }
  waitFor([&] { return server.stats().placements >= 512; });
  server.requestDrain();
  for (std::thread& t : threads) t.join();
  server.join();

  ServerStats stats = server.stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_TRUE(stats.drained);
  EXPECT_FALSE(server.running());
  // Every reply the clients managed to read was for an executed
  // placement; the server may have executed more (replies cut by the
  // close or never read after a send failure).
  EXPECT_LE(clientReads.load(), stats.placements);
  EXPECT_GE(stats.placements, 512u);
}

}  // namespace
}  // namespace cdbp::serve
