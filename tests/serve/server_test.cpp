// End-to-end and robustness tests for the serve daemon (DESIGN.md §13).
//
// Most tests adopt one end of a socketpair into the server's event loop —
// no filesystem or port allocation — and drive the other end with
// ServeClient. Listener coverage (Unix path + loopback TCP) gets its own
// tests at the bottom.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "online/policy_factory.hpp"
#include "serve/client.hpp"
#include "sim/streaming.hpp"
#include "telemetry/telemetry.hpp"

namespace cdbp::serve {
namespace {

constexpr double kMinDuration = 1.0;
constexpr double kMu = 8.0;

HelloFrame makeHello(const std::string& tenant, const std::string& spec) {
  HelloFrame hello;
  hello.version = kProtocolVersion;
  hello.engine = 0;
  hello.minDuration = kMinDuration;
  hello.mu = kMu;
  hello.seed = 42;
  hello.tenant = tenant;
  hello.policySpec = spec;
  return hello;
}

/// Server + one adopted socketpair connection, torn down in order.
struct Harness {
  explicit Harness(ServerOptions options = {}) : server(options) {
    server.start();
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    clientFd = fds[0];
    server.adoptConnection(fds[1]);
  }

  /// Adds another adopted connection, returning the client-side fd.
  int adoptAnother() {
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    server.adoptConnection(fds[1]);
    return fds[0];
  }

  Server server;
  int clientFd = -1;
};

void waitFor(const std::function<bool()>& done) {
  for (int i = 0; i < 2000; ++i) {
    if (done()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "condition not reached within the polling budget";
}

TEST(ServeServer, EndToEndSessionMatchesLocalEngine) {
  Harness h;
  ServeClient client(h.clientFd);

  HelloOkFrame ok = client.hello(makeHello("tenant-a", "cdt-ff"));
  EXPECT_EQ(ok.version, kProtocolVersion);
  EXPECT_GT(ok.tenantId, 0u);

  // The same item sequence through a local StreamEngine: the served
  // placements must match decision for decision.
  PolicyContext context;
  context.minDuration = kMinDuration;
  context.mu = kMu;
  context.seed = 42;
  PolicyPtr local = makePolicy("cdt-ff", context);
  StreamEngine engine(*local);
  EXPECT_EQ(ok.policyName, local->name());

  std::vector<StreamItem> items;
  for (int i = 0; i < 200; ++i) {
    double arrival = 0.25 * i;
    double size = 0.1 + 0.13 * static_cast<double>(i % 7);
    double departure = arrival + kMinDuration + (i % 11);
    items.push_back(StreamItem{size, arrival, departure});
  }
  for (const StreamItem& item : items) {
    PlacedFrame served = client.place(item.size, item.arrival, item.departure);
    StreamEngine::Placement expected = engine.place(item);
    ASSERT_EQ(served.item, expected.item);
    ASSERT_EQ(served.bin, expected.bin);
    ASSERT_EQ(served.openedNewBin != 0, expected.openedNewBin);
    ASSERT_EQ(served.category, expected.category);
  }

  StatsOkFrame stats = client.stats();
  EXPECT_EQ(stats.items, engine.itemsPlaced());
  EXPECT_EQ(stats.binsOpened, engine.binsOpened());
  EXPECT_EQ(stats.openBins, engine.openBins());
  EXPECT_EQ(stats.pendingDepartures, engine.pendingDepartures());

  DepartOkFrame departed = client.departUntil(60.0);
  std::size_t localDrained = engine.drainUntil(60.0);
  EXPECT_EQ(departed.drained, localDrained);
  EXPECT_EQ(departed.openBins, engine.openBins());

  DrainOkFrame drained = client.drain();
  StreamResult result = engine.finish();
  EXPECT_EQ(drained.items, result.items);
  EXPECT_EQ(drained.totalUsage, result.totalUsage);
  EXPECT_EQ(drained.binsOpened, result.binsOpened);
  EXPECT_EQ(drained.maxOpenBins, result.maxOpenBins);
  EXPECT_EQ(drained.categoriesUsed, result.categoriesUsed);
  EXPECT_EQ(drained.lb3, result.lb3);
  EXPECT_EQ(drained.peakOpenItems, result.peakOpenItems);

  ServerStats serverStats = h.server.stats();
  EXPECT_EQ(serverStats.placements, items.size());
  EXPECT_EQ(serverStats.sessionsOpened, 1u);
  EXPECT_EQ(serverStats.sessionsFinished, 1u);
  EXPECT_EQ(serverStats.shedConnections, 0u);

  std::vector<TenantSnapshot> tenants = h.server.tenants();
  ASSERT_EQ(tenants.size(), 1u);
  EXPECT_EQ(tenants[0].name, "tenant-a");
  EXPECT_TRUE(tenants[0].finished);
}

TEST(ServeServer, TypedErrorsKeepTheConnectionServing) {
  Harness h;
  ServeClient client(h.clientFd);

  // PLACE before HELLO.
  {
    std::vector<std::uint8_t> bytes;
    appendPlace(bytes, PlaceFrame{0.5, 0.0, 2.0});
    client.sendRaw(bytes);
    OwnedFrame reply = client.readFrame();
    ASSERT_EQ(reply.type, FrameType::kError);
    ErrorFrame error;
    ASSERT_TRUE(decodeError(reply.view(), error));
    EXPECT_EQ(error.code, ErrorCode::kUnknownTenant);
  }

  // Unknown frame type.
  {
    std::vector<std::uint8_t> bytes = {0x01, 0x00, 0x00, 0x00, 0x7E};
    client.sendRaw(bytes);
    OwnedFrame reply = client.readFrame();
    ErrorFrame error;
    ASSERT_TRUE(decodeError(reply.view(), error));
    EXPECT_EQ(error.code, ErrorCode::kUnknownFrameType);
  }

  // Zero-length frame.
  {
    std::vector<std::uint8_t> bytes = {0x00, 0x00, 0x00, 0x00};
    client.sendRaw(bytes);
    OwnedFrame reply = client.readFrame();
    ErrorFrame error;
    ASSERT_TRUE(decodeError(reply.view(), error));
    EXPECT_EQ(error.code, ErrorCode::kMalformedFrame);
  }

  // Truncated HELLO body under a self-consistent length prefix.
  {
    std::vector<std::uint8_t> bytes = {0x03, 0x00, 0x00, 0x00,
                                       0x01,  // kHello
                                       0x01, 0x00};
    client.sendRaw(bytes);
    OwnedFrame reply = client.readFrame();
    ErrorFrame error;
    ASSERT_TRUE(decodeError(reply.view(), error));
    EXPECT_EQ(error.code, ErrorCode::kMalformedFrame);
  }

  // Version skew.
  {
    HelloFrame hello = makeHello("tenant", "ff");
    hello.version = 99;
    EXPECT_THROW(
        {
          try {
            client.hello(hello);
          } catch (const ServeError& e) {
            EXPECT_EQ(e.code(), ErrorCode::kProtocolVersion);
            throw;
          }
        },
        ServeError);
  }

  // Bad policy spec.
  {
    EXPECT_THROW(
        {
          try {
            client.hello(makeHello("tenant", "no-such-policy(rho=banana)"));
          } catch (const ServeError& e) {
            EXPECT_EQ(e.code(), ErrorCode::kBadPolicySpec);
            throw;
          }
        },
        ServeError);
  }

  // After all of that the connection still opens a working session.
  HelloOkFrame ok = client.hello(makeHello("tenant", "ff"));
  EXPECT_GT(ok.tenantId, 0u);

  // Duplicate HELLO.
  EXPECT_THROW(
      {
        try {
          client.hello(makeHello("tenant-again", "bf"));
        } catch (const ServeError& e) {
          EXPECT_EQ(e.code(), ErrorCode::kDuplicateHello);
          throw;
        }
      },
      ServeError);

  // Bad item: non-positive size is rejected by the engine, session intact.
  EXPECT_THROW(
      {
        try {
          client.place(-1.0, 0.0, 2.0);
        } catch (const ServeError& e) {
          EXPECT_EQ(e.code(), ErrorCode::kBadItem);
          throw;
        }
      },
      ServeError);

  // Accepted placement, then an out-of-order DEPART behind the watermark.
  PlacedFrame placed = client.place(0.5, 5.0, 8.0);
  EXPECT_EQ(placed.bin, 0);
  EXPECT_THROW(
      {
        try {
          client.departUntil(1.0);
        } catch (const ServeError& e) {
          EXPECT_EQ(e.code(), ErrorCode::kOutOfOrder);
          throw;
        }
      },
      ServeError);

  // Out-of-order PLACE behind the watermark.
  EXPECT_THROW(
      {
        try {
          client.place(0.5, 1.0, 9.0);
        } catch (const ServeError& e) {
          EXPECT_EQ(e.code(), ErrorCode::kOutOfOrder);
          throw;
        }
      },
      ServeError);

  // The session still works and finishes cleanly.
  DrainOkFrame drained = client.drain();
  EXPECT_EQ(drained.items, 1u);

  // Requests after DRAIN are typed rejections, not disconnects.
  EXPECT_THROW(
      {
        try {
          client.place(0.5, 9.0, 12.0);
        } catch (const ServeError& e) {
          EXPECT_EQ(e.code(), ErrorCode::kSessionFinished);
          throw;
        }
      },
      ServeError);

  ServerStats stats = h.server.stats();
  EXPECT_GE(stats.errorsSent, 10u);
  EXPECT_EQ(stats.openConnections, 1u);  // never dropped
}

TEST(ServeServer, OversizedFramePrefixShedsTheConnection) {
  Harness h;
  ServeClient client(h.clientFd);
  // Length prefix far above the cap: the server cannot resync past an
  // untrusted length, so it answers kOversizedFrame and closes.
  std::vector<std::uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0x7F, 0x02};
  client.sendRaw(bytes);
  OwnedFrame reply = client.readFrame();
  ErrorFrame error;
  ASSERT_TRUE(decodeError(reply.view(), error));
  EXPECT_EQ(error.code, ErrorCode::kOversizedFrame);
  EXPECT_THROW(client.readFrame(), std::runtime_error);  // EOF follows
  waitFor([&] { return h.server.stats().openConnections == 0; });
}

TEST(ServeServer, BackpressureBoundsServerMemory) {
  ServerOptions options;
  options.writeBufferLimit = 4096;
  Harness h(options);
  ServeClient client(h.clientFd);
  client.hello(makeHello("flood", "ff"));

  // Stop reading replies and flood PLACE frames until the transport
  // clogs. The server must throttle: replies buffer up to the limit, then
  // frame processing stops, then reading stops — memory stays bounded no
  // matter how much the client sends.
  ASSERT_EQ(fcntl(h.clientFd, F_SETFL,
                  fcntl(h.clientFd, F_GETFL, 0) | O_NONBLOCK),
            0);
  std::vector<std::uint8_t> frame;
  appendPlace(frame, PlaceFrame{0.001, 100.0, 200.0});
  std::size_t queuedFrames = 0;
  std::size_t partial = 0;  // bytes of a frame already on the wire
  while (queuedFrames < 200000) {
    ssize_t n = send(h.clientFd, frame.data() + partial,
                     frame.size() - partial, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
      break;  // both kernel buffers and the server's bound are full
    }
    partial += static_cast<std::size_t>(n);
    if (partial == frame.size()) {
      partial = 0;
      ++queuedFrames;
    }
  }
  ASSERT_GT(queuedFrames, 0u);

  // The flood throttled the connection at least once, and the write
  // buffer never grew past the limit plus one reply frame.
  waitFor([&] { return h.server.stats().throttleEvents >= 1; });
  const std::size_t replyBound = 64;  // PLACED/error replies are tiny
  EXPECT_LE(h.server.stats().peakWriteBuffered,
            options.writeBufferLimit + replyBound);
  EXPECT_EQ(h.server.stats().shedConnections, 0u);

  // Resume reading: every queued request gets its reply and the session
  // finishes normally.
  int flags = fcntl(h.clientFd, F_GETFL, 0);
  ASSERT_EQ(fcntl(h.clientFd, F_SETFL, flags & ~O_NONBLOCK), 0);
  for (std::size_t i = 0; i < queuedFrames; ++i) {
    OwnedFrame reply = client.expectFrame(FrameType::kPlaced);
    PlacedFrame placed;
    ASSERT_TRUE(decodePlaced(reply.view(), placed));
  }
  if (partial > 0) {
    // A frame was cut mid-write when the transport clogged. The server
    // has drained by now, so finish it (blocking) to restore framing.
    std::vector<std::uint8_t> rest(frame.begin() +
                                       static_cast<std::ptrdiff_t>(partial),
                                   frame.end());
    client.sendRaw(rest);
    ++queuedFrames;
    OwnedFrame reply = client.expectFrame(FrameType::kPlaced);
    PlacedFrame placed;
    ASSERT_TRUE(decodePlaced(reply.view(), placed));
  }
  DrainOkFrame drained = client.drain();
  EXPECT_EQ(drained.items, queuedFrames);
  EXPECT_LE(h.server.stats().peakWriteBuffered,
            options.writeBufferLimit + replyBound);
}

TEST(ServeServer, GracefulDrainAnswersInFlightRequestsAndExits) {
  Harness h;
  ServeClient client(h.clientFd);
  client.hello(makeHello("draining", "bf"));

  // Pipeline a burst, then request the drain before reading anything:
  // every fully-received request must still be answered.
  constexpr std::size_t kBurst = 500;
  for (std::size_t i = 0; i < kBurst; ++i) {
    double arrival = 0.01 * static_cast<double>(i);
    client.queuePlace(0.2, arrival, arrival + 5.0);
  }
  client.flushQueued();
  // Make sure the burst reached the loop before the drain flag does.
  waitFor([&] { return h.server.stats().placements >= 1; });
  h.server.requestDrain();

  for (std::size_t i = 0; i < kBurst; ++i) {
    OwnedFrame reply = client.expectFrame(FrameType::kPlaced);
    PlacedFrame placed;
    ASSERT_TRUE(decodePlaced(reply.view(), placed));
    EXPECT_EQ(placed.item, i);
  }
  // After the replies flush the server closes and the loop exits.
  EXPECT_THROW(client.readFrame(), std::runtime_error);
  h.server.join();
  ServerStats stats = h.server.stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.placements, kBurst);
  EXPECT_FALSE(h.server.running());
}

TEST(ServeServer, ScrapeReturnsLiveTelemetryDuringLoad) {
  Harness h;
  ServeClient client(h.clientFd);
  client.hello(makeHello("scraped", "cd-ff"));
  for (int i = 0; i < 50; ++i) {
    client.place(0.3, static_cast<double>(i), static_cast<double>(i) + 3.0);
  }
  std::string text = client.scrape();
  if (telemetry::kEnabled) {
    // Live counters from this very session are visible in the scrape.
    EXPECT_NE(text.find("cdbp_serve_placements"), std::string::npos);
    EXPECT_NE(text.find("cdbp_serve_frames_rx"), std::string::npos);
  } else {
    // Telemetry compiled out: the scrape endpoint still answers.
    EXPECT_TRUE(text.empty());
  }
  client.drain();
}

TEST(ServeServer, TenantsAreIsolated) {
  Harness h;
  ServeClient a(h.clientFd);
  ServeClient b(h.adoptAnother());

  a.hello(makeHello("tenant-a", "ff"));
  b.hello(makeHello("tenant-b", "ff"));

  // Interleaved sessions with identical items: isolation means each
  // tenant's bins fill independently (same decisions in both sessions),
  // not shared.
  for (int i = 0; i < 20; ++i) {
    double arrival = static_cast<double>(i);
    PlacedFrame fromA = a.place(0.4, arrival, arrival + 50.0);
    PlacedFrame fromB = b.place(0.4, arrival, arrival + 50.0);
    ASSERT_EQ(fromA.bin, fromB.bin) << "sessions diverged at item " << i;
  }
  DrainOkFrame drainedA = a.drain();
  DrainOkFrame drainedB = b.drain();
  EXPECT_EQ(drainedA.binsOpened, drainedB.binsOpened);
  EXPECT_EQ(drainedA.totalUsage, drainedB.totalUsage);

  std::vector<TenantSnapshot> tenants = h.server.tenants();
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].name, "tenant-a");
  EXPECT_EQ(tenants[1].name, "tenant-b");
  EXPECT_EQ(tenants[0].items, 20u);
  EXPECT_EQ(tenants[1].items, 20u);
}

TEST(ServeServer, HalfCloseFlushesPendingRepliesBeforeClosing) {
  Harness h;
  ServeClient client(h.clientFd);
  client.hello(makeHello("half-close", "ff"));
  for (int i = 0; i < 10; ++i) {
    client.queuePlace(0.1, static_cast<double>(i), static_cast<double>(i) + 2.0);
  }
  client.flushQueued();
  // Shut down the write side only: the server must answer what it already
  // received, then close.
  ASSERT_EQ(shutdown(client.fd(), SHUT_WR), 0);
  for (std::size_t i = 0; i < 10; ++i) {
    OwnedFrame reply = client.expectFrame(FrameType::kPlaced);
    PlacedFrame placed;
    ASSERT_TRUE(decodePlaced(reply.view(), placed));
  }
  EXPECT_THROW(client.readFrame(), std::runtime_error);
  waitFor([&] { return h.server.stats().openConnections == 0; });
}

TEST(ServeServer, UnixListenerAcceptsAndServes) {
  std::string path = testing::TempDir() + "cdbp_serve_" +
                     std::to_string(::getpid()) + ".sock";
  ServerOptions options;
  options.unixPath = path;
  Server server(options);
  server.start();

  ServeClient client = ServeClient::connectUnix(path);
  HelloOkFrame ok = client.hello(makeHello("via-unix", "min-ext"));
  EXPECT_GT(ok.tenantId, 0u);
  PlacedFrame placed = client.place(0.5, 0.0, 4.0);
  EXPECT_EQ(placed.bin, 0);
  DrainOkFrame drained = client.drain();
  EXPECT_EQ(drained.items, 1u);
  server.stop();
  server.join();
  ::unlink(path.c_str());
}

TEST(ServeServer, TcpListenerBindsEphemeralPortAndServes) {
  ServerOptions options;
  options.tcp = true;
  options.tcpPort = 0;
  Server server(options);
  server.start();
  ASSERT_GT(server.tcpPort(), 0);

  ServeClient client = ServeClient::connectTcp("127.0.0.1", server.tcpPort());
  client.hello(makeHello("via-tcp", "ff"));
  PlacedFrame placed = client.place(0.25, 0.0, 2.0);
  EXPECT_EQ(placed.bin, 0);
  EXPECT_EQ(server.stats().connectionsAccepted, 1u);
  client.drain();
  server.stop();
  server.join();
}

TEST(ServeServer, ParseServeAddressForms) {
  ServeAddress addr;
  std::string error;
  ASSERT_TRUE(parseServeAddress("unix:/tmp/x.sock", addr, error));
  EXPECT_FALSE(addr.tcp);
  EXPECT_EQ(addr.path, "/tmp/x.sock");

  ASSERT_TRUE(parseServeAddress("tcp:127.0.0.1:9000", addr, error));
  EXPECT_TRUE(addr.tcp);
  EXPECT_EQ(addr.host, "127.0.0.1");
  EXPECT_EQ(addr.port, 9000);

  ASSERT_TRUE(parseServeAddress("/tmp/bare.sock", addr, error));
  EXPECT_FALSE(addr.tcp);
  EXPECT_EQ(addr.path, "/tmp/bare.sock");

  EXPECT_FALSE(parseServeAddress("", addr, error));
  EXPECT_FALSE(parseServeAddress("tcp:nohost", addr, error));
  EXPECT_FALSE(parseServeAddress("tcp:host:notaport", addr, error));
  EXPECT_FALSE(parseServeAddress("tcp:host:70000", addr, error));
  EXPECT_FALSE(parseServeAddress("unix:", addr, error));
}

}  // namespace
}  // namespace cdbp::serve
