// Property/fuzz battery for the serve wire-format decoders
// (serve/protocol.*). Every mutated input must yield a clean reject — a
// `false` return from a body decoder, kNeedMore/kOversized from
// extractFrame, or a successful decode of whatever the bytes happen to
// spell — never a crash, an over-read (the asan-ubsan CI job watches), an
// infinite parse loop, or a partial write into the caller's `out` struct.
//
// The harness is deterministic: a fixed-seed SplitMix64 drives every
// mutation, so a failure reproduces bit-for-bit from the test log's
// (corpus index, round) coordinates. Mutation families:
//
//   * truncation at every byte boundary,
//   * length-prefix corruption (the u32 framing field),
//   * type-byte flips across all 256 values,
//   * targeted two-byte 0xFFFF stomps at every offset (hits each inner
//     u16/u32 string-length and op-count field wherever it sits),
//   * random multi-byte mutations,
//   * v1/v2 cross-version bytes: every corpus payload fed to every
//     decoder, and BATCH bodies spliced behind v1 frame types,
//   * pure random garbage and concatenated-frame streams.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cdbp::serve {
namespace {

// Deterministic generator (no std::random_device anywhere): SplitMix64.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }
};

using Bytes = std::vector<std::uint8_t>;

// --- corpus ---------------------------------------------------------------

Bytes encodedHello(std::uint16_t version, const std::string& tenant,
                   const std::string& spec) {
  HelloFrame f;
  f.version = version;
  f.engine = 1;
  f.minDuration = 0.25;
  f.mu = 8.0;
  f.seed = 99;
  f.tenant = tenant;
  f.policySpec = spec;
  Bytes out;
  appendHello(out, f);
  return out;
}

std::vector<Bytes> buildCorpus() {
  std::vector<Bytes> corpus;
  auto add = [&corpus](Bytes b) { corpus.push_back(std::move(b)); };

  add(encodedHello(1, "tenant-a", "cdt-ff"));       // v1 session opener
  add(encodedHello(kProtocolVersion, "", ""));      // empty strings
  add(encodedHello(kProtocolVersion, std::string(300, 'x'),
                   "combined-ff(alpha=2)"));        // long strings

  {
    HelloOkFrame f;
    f.version = kProtocolVersion;
    f.tenantId = 7;
    f.policyName = "ClassifyByDepartureFF(rho=1)";
    Bytes out;
    appendHelloOk(out, f);
    add(out);
  }
  {
    PlaceFrame f{0.5, 1.0, 2.5};
    Bytes out;
    appendPlace(out, f);
    add(out);
  }
  {
    PlacedFrame f;
    f.item = 3;
    f.bin = -1;
    f.openedNewBin = 1;
    f.category = 12;
    Bytes out;
    appendPlaced(out, f);
    add(out);
  }
  {
    DepartFrame f{4.75};
    Bytes out;
    appendDepart(out, f);
    add(out);
  }
  {
    DepartOkFrame f{5, 2};
    Bytes out;
    appendDepartOk(out, f);
    add(out);
  }
  {
    BatchFrame f;  // empty batch
    Bytes out;
    appendBatch(out, f);
    add(out);
  }
  {
    BatchFrame f;  // mixed-kind batch (v2-only body)
    for (int i = 0; i < 17; ++i) {
      BatchOp op;
      if (i % 3 == 2) {
        op.kind = kBatchOpDepart;
        op.depart.time = i * 0.5;
      } else {
        op.kind = kBatchOpPlace;
        op.place = {0.25, i * 0.5, i * 0.5 + 2.0};
      }
      f.ops.push_back(op);
    }
    Bytes out;
    appendBatch(out, f);
    add(out);
  }
  {
    BatchOkFrame f;
    for (int i = 0; i < 5; ++i) {
      BatchResultEntry r;
      r.kind = i % 2 == 0 ? kBatchOpPlace : kBatchOpDepart;
      r.placed.item = static_cast<std::uint32_t>(i);
      r.depart.drained = static_cast<std::uint64_t>(i);
      f.results.push_back(r);
    }
    f.failed = 1;
    f.failedIndex = 5;
    f.errorCode = ErrorCode::kBadItem;
    f.errorMessage = "size outside (0, 1]";
    Bytes out;
    appendBatchOk(out, f);
    add(out);
  }
  {
    Bytes out;
    appendStats(out);
    add(out);
  }
  {
    StatsOkFrame f{10, 4, 2, 3, 6, 4096};
    Bytes out;
    appendStatsOk(out, f);
    add(out);
  }
  {
    Bytes out;
    appendDrain(out);
    add(out);
  }
  {
    DrainOkFrame f;
    f.items = 10;
    f.totalUsage = 12.5;
    f.lb3 = 9.25;
    Bytes out;
    appendDrainOk(out, f);
    add(out);
  }
  {
    Bytes out;
    appendScrape(out);
    add(out);
  }
  {
    ScrapeOkFrame f;
    f.text = "# TYPE sim_fit_checks counter\nsim_fit_checks 42\n";
    Bytes out;
    appendScrapeOk(out, f);
    add(out);
  }
  {
    ErrorFrame f;
    f.code = ErrorCode::kOutOfOrder;
    f.message = "arrival behind watermark";
    Bytes out;
    appendError(out, f);
    add(out);
  }
  return corpus;
}

// --- the decode-everything oracle ----------------------------------------

// Runs every body decoder over the view. The only demanded outcome is a
// boolean — truncated and corrupt bodies must come back `false` without
// reading past payloadSize (asan watches) or touching `out` (checked for
// a sample of types below).
void decodeAll(const FrameView& frame) {
  {
    HelloFrame out;
    decodeHello(frame, out);
  }
  {
    HelloOkFrame out;
    decodeHelloOk(frame, out);
  }
  {
    PlaceFrame out;
    decodePlace(frame, out);
  }
  {
    PlacedFrame out;
    decodePlaced(frame, out);
  }
  {
    DepartFrame out;
    decodeDepart(frame, out);
  }
  {
    DepartOkFrame out;
    decodeDepartOk(frame, out);
  }
  {
    BatchFrame out;
    decodeBatch(frame, out);
  }
  {
    BatchOkFrame out;
    decodeBatchOk(frame, out);
  }
  {
    StatsOkFrame out;
    decodeStatsOk(frame, out);
  }
  {
    DrainOkFrame out;
    decodeDrainOk(frame, out);
  }
  {
    ScrapeOkFrame out;
    decodeScrapeOk(frame, out);
  }
  {
    ErrorFrame out;
    decodeError(frame, out);
  }
  decodeEmpty(frame);
}

// Streams a (possibly garbage) byte buffer through extractFrame the way
// Session::processBufferedFrames does, decoding every extracted frame with
// every decoder. Asserts the parse makes progress (no infinite loop) and
// never claims more bytes than the buffer holds.
void fuzzStream(const Bytes& bytes) {
  std::size_t pos = 0;
  for (;;) {
    FrameView view;
    std::size_t consumed = 0;
    ExtractStatus status = extractFrame(bytes.data() + pos, bytes.size() - pos,
                                        kDefaultMaxFramePayload, view,
                                        consumed);
    if (status != ExtractStatus::kFrame) break;  // clean reject / need more
    ASSERT_GT(consumed, 0u) << "parser must make progress";
    ASSERT_LE(consumed, bytes.size() - pos) << "parser claimed bytes it "
                                               "was never given";
    ASSERT_LE(view.payloadSize + 5, consumed + 1)
        << "payload view larger than the consumed frame";
    decodeAll(view);
    pos += consumed;
  }
}

// --- mutation families ----------------------------------------------------

TEST(ProtocolFuzz, TruncationAtEveryByte) {
  for (const Bytes& frame : buildCorpus()) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      Bytes mutated(frame.begin(), frame.begin() + cut);
      fuzzStream(mutated);
    }
  }
}

TEST(ProtocolFuzz, LengthPrefixCorruption) {
  for (const Bytes& frame : buildCorpus()) {
    ASSERT_GE(frame.size(), 5u);
    const std::uint32_t actual = static_cast<std::uint32_t>(frame.size() - 4);
    const std::uint32_t interesting[] = {
        0,          1,          2,           actual - 1,
        actual + 1, actual * 2, 0xFFFFu,     0x10000u,
        static_cast<std::uint32_t>(kDefaultMaxFramePayload),
        static_cast<std::uint32_t>(kDefaultMaxFramePayload) + 1,
        0xFFFFFFFFu};
    for (std::uint32_t bogus : interesting) {
      Bytes mutated = frame;
      for (int b = 0; b < 4; ++b) {
        mutated[static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>((bogus >> (8 * b)) & 0xFF);
      }
      fuzzStream(mutated);
    }
  }
}

TEST(ProtocolFuzz, TypeByteFlips) {
  for (const Bytes& frame : buildCorpus()) {
    for (int type = 0; type < 256; ++type) {
      Bytes mutated = frame;
      mutated[4] = static_cast<std::uint8_t>(type);
      fuzzStream(mutated);
    }
  }
}

TEST(ProtocolFuzz, InnerLengthFieldStomps) {
  // A 0xFFFF two-byte stomp at every offset hits each embedded string
  // length, op count and version field in turn — the classic
  // "length says more than the buffer holds" over-read bait.
  for (const Bytes& frame : buildCorpus()) {
    for (std::size_t at = 4; at + 1 < frame.size(); ++at) {
      Bytes mutated = frame;
      mutated[at] = 0xFF;
      mutated[at + 1] = 0xFF;
      fuzzStream(mutated);
    }
  }
}

TEST(ProtocolFuzz, RandomMutations) {
  std::vector<Bytes> corpus = buildCorpus();
  for (std::size_t ci = 0; ci < corpus.size(); ++ci) {
    Rng rng(0xC0FFEE00u + ci);
    for (int round = 0; round < 256; ++round) {
      Bytes mutated = corpus[ci];
      std::size_t flips = 1 + rng.below(4);
      for (std::size_t f = 0; f < flips; ++f) {
        mutated[rng.below(mutated.size())] =
            static_cast<std::uint8_t>(rng.next());
      }
      SCOPED_TRACE("corpus " + std::to_string(ci) + " round " +
                   std::to_string(round));
      fuzzStream(mutated);
    }
  }
}

TEST(ProtocolFuzz, CrossVersionBytes) {
  // Every corpus payload through every decoder — v1 bodies against v2
  // decoders and vice versa (a BATCH body handed to decodePlace, a HELLO
  // body handed to decodeBatchOk, ...).
  std::vector<Bytes> corpus = buildCorpus();
  for (const Bytes& a : corpus) {
    FrameView view;
    view.type = static_cast<FrameType>(a[4]);
    view.payload = a.data() + 5;
    view.payloadSize = a.size() - 5;
    decodeAll(view);
  }
  // BATCH bodies spliced behind v1 frame types and vice versa, then
  // streamed: the type byte promises one layout, the body delivers
  // another.
  Rng rng(0xBADC0DE);
  for (const Bytes& a : corpus) {
    for (const Bytes& b : corpus) {
      Bytes spliced;
      // a's framing (length + type) over b's body, length re-fixed.
      std::uint32_t payload = static_cast<std::uint32_t>(b.size() - 4);
      for (int i = 0; i < 4; ++i) {
        spliced.push_back(
            static_cast<std::uint8_t>((payload >> (8 * i)) & 0xFF));
      }
      spliced.push_back(a[4]);
      spliced.insert(spliced.end(), b.begin() + 5, b.end());
      fuzzStream(spliced);
      if (rng.below(2) == 0) {
        // Concatenated stream: resync across a valid second frame.
        Bytes stream = spliced;
        stream.insert(stream.end(), a.begin(), a.end());
        fuzzStream(stream);
      }
    }
  }
}

TEST(ProtocolFuzz, PureRandomGarbage) {
  Rng rng(0xFEEDFACE);
  for (int round = 0; round < 512; ++round) {
    Bytes garbage(rng.below(200));
    for (std::uint8_t& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.next());
    }
    SCOPED_TRACE("round " + std::to_string(round));
    fuzzStream(garbage);
  }
}

// --- decoder contracts beyond "does not crash" ----------------------------

TEST(ProtocolFuzz, RejectLeavesOutUntouched) {
  // The header promises: on `false`, nothing was written into `out`.
  // Truncate a PLACE and a BATCH at every boundary and check the sentinel
  // survives every reject.
  PlaceFrame placeSentinel{-1.0, -2.0, -3.0};
  BatchFrame batchSentinel;
  {
    BatchOp op;
    op.kind = kBatchOpDepart;
    op.depart.time = -9.0;
    batchSentinel.ops.push_back(op);
  }

  Bytes place;
  appendPlace(place, PlaceFrame{0.5, 1.0, 2.0});
  for (std::size_t cut = 0; cut + 5 < place.size(); ++cut) {
    FrameView view;
    view.type = FrameType::kPlace;
    view.payload = place.data() + 5;
    view.payloadSize = cut;
    PlaceFrame out = placeSentinel;
    ASSERT_FALSE(decodePlace(view, out)) << "cut " << cut;
    EXPECT_EQ(out.size, placeSentinel.size);
    EXPECT_EQ(out.arrival, placeSentinel.arrival);
    EXPECT_EQ(out.departure, placeSentinel.departure);
  }

  BatchFrame full;
  for (int i = 0; i < 3; ++i) {
    BatchOp op;
    op.kind = kBatchOpPlace;
    op.place = {0.25, i * 1.0, i * 1.0 + 2.0};
    full.ops.push_back(op);
  }
  Bytes batch;
  appendBatch(batch, full);
  for (std::size_t cut = 0; cut + 5 < batch.size(); ++cut) {
    FrameView view;
    view.type = FrameType::kBatch;
    view.payload = batch.data() + 5;
    view.payloadSize = cut;
    BatchFrame out = batchSentinel;
    ASSERT_FALSE(decodeBatch(view, out)) << "cut " << cut;
    ASSERT_EQ(out.ops.size(), 1u);
    EXPECT_EQ(out.ops[0].kind, kBatchOpDepart);
    EXPECT_EQ(out.ops[0].depart.time, -9.0);
  }
}

TEST(ProtocolFuzz, BatchOpCountAboveCapRejects) {
  BatchFrame f;
  BatchOp op;
  op.kind = kBatchOpDepart;
  op.depart.time = 1.0;
  f.ops.push_back(op);
  Bytes bytes;
  appendBatch(bytes, f);
  // The op count is the first u32 of the body (offset 5). A count above
  // kMaxBatchOps must reject even though the bytes that follow would
  // "run out" long before — the cap check fires before any allocation.
  std::uint32_t huge = static_cast<std::uint32_t>(kMaxBatchOps) + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[5 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((huge >> (8 * i)) & 0xFF);
  }
  FrameView view;
  view.type = FrameType::kBatch;
  view.payload = bytes.data() + 5;
  view.payloadSize = bytes.size() - 5;
  BatchFrame out;
  EXPECT_FALSE(decodeBatch(view, out));
  EXPECT_TRUE(out.ops.empty());
}

TEST(ProtocolFuzz, OversizedPrefixIsUnrecoverable) {
  // A length prefix above the cap must come back kOversized — never
  // kFrame (the stream cannot be trusted past a bogus length).
  Bytes bytes;
  appendStats(bytes);
  std::uint32_t above = static_cast<std::uint32_t>(kDefaultMaxFramePayload) + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((above >> (8 * i)) & 0xFF);
  }
  FrameView view;
  std::size_t consumed = 0;
  EXPECT_EQ(extractFrame(bytes.data(), bytes.size(), kDefaultMaxFramePayload,
                         view, consumed),
            ExtractStatus::kOversized);
}

}  // namespace
}  // namespace cdbp::serve
