#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cdbp::serve {
namespace {

// Extracts exactly one frame from `bytes` and asserts nothing is left
// over — encoders must produce self-delimiting output.
FrameView extractOne(const std::vector<std::uint8_t>& bytes) {
  FrameView frame;
  std::size_t consumed = 0;
  ExtractStatus status = extractFrame(bytes.data(), bytes.size(),
                                      kDefaultMaxFramePayload, frame,
                                      consumed);
  EXPECT_EQ(status, ExtractStatus::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  return frame;
}

TEST(ServeProtocol, HelloRoundTrip) {
  HelloFrame in;
  in.version = kProtocolVersion;
  in.engine = 1;
  in.minDuration = 0.125;
  in.mu = 24.5;
  in.seed = 0xDEADBEEFCAFEF00Dull;
  in.tenant = "tenant-a";
  in.policySpec = "cdt-ff(rho=2)";

  std::vector<std::uint8_t> bytes;
  appendHello(bytes, in);
  FrameView frame = extractOne(bytes);
  ASSERT_EQ(frame.type, FrameType::kHello);

  HelloFrame out;
  ASSERT_TRUE(decodeHello(frame, out));
  EXPECT_EQ(out.version, in.version);
  EXPECT_EQ(out.engine, in.engine);
  EXPECT_EQ(out.minDuration, in.minDuration);
  EXPECT_EQ(out.mu, in.mu);
  EXPECT_EQ(out.seed, in.seed);
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_EQ(out.policySpec, in.policySpec);
}

TEST(ServeProtocol, DoublesTravelBitExactly) {
  // Negative zero, a subnormal, an irrational dyadic tail and a NaN
  // payload all round-trip through the f64 encoding bit for bit.
  const double values[] = {-0.0, std::numeric_limits<double>::denorm_min(),
                           1.0 / 3.0,
                           std::numeric_limits<double>::quiet_NaN()};
  for (double v : values) {
    PlaceFrame in{v, v, v};
    std::vector<std::uint8_t> bytes;
    appendPlace(bytes, in);
    PlaceFrame out;
    ASSERT_TRUE(decodePlace(extractOne(bytes), out));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.size),
              std::bit_cast<std::uint64_t>(v));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.arrival),
              std::bit_cast<std::uint64_t>(v));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.departure),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(ServeProtocol, ReplyRoundTrips) {
  {
    HelloOkFrame in{kProtocolVersion, 7, "CDT-FF(rho=2)"};
    std::vector<std::uint8_t> bytes;
    appendHelloOk(bytes, in);
    HelloOkFrame out;
    ASSERT_TRUE(decodeHelloOk(extractOne(bytes), out));
    EXPECT_EQ(out.tenantId, 7u);
    EXPECT_EQ(out.policyName, "CDT-FF(rho=2)");
  }
  {
    PlacedFrame in{41, -1, 1, 3};
    std::vector<std::uint8_t> bytes;
    appendPlaced(bytes, in);
    PlacedFrame out;
    ASSERT_TRUE(decodePlaced(extractOne(bytes), out));
    EXPECT_EQ(out.item, 41u);
    EXPECT_EQ(out.bin, -1);
    EXPECT_EQ(out.openedNewBin, 1);
    EXPECT_EQ(out.category, 3);
  }
  {
    DepartOkFrame in{12, 5};
    std::vector<std::uint8_t> bytes;
    appendDepartOk(bytes, in);
    DepartOkFrame out;
    ASSERT_TRUE(decodeDepartOk(extractOne(bytes), out));
    EXPECT_EQ(out.drained, 12u);
    EXPECT_EQ(out.openBins, 5u);
  }
  {
    StatsOkFrame in{100, 9, 4, 17, 23, 4096};
    std::vector<std::uint8_t> bytes;
    appendStatsOk(bytes, in);
    StatsOkFrame out;
    ASSERT_TRUE(decodeStatsOk(extractOne(bytes), out));
    EXPECT_EQ(out.items, 100u);
    EXPECT_EQ(out.peakResidentBytes, 4096u);
  }
  {
    DrainOkFrame in{100, 12.5, 9, 4, 2, 11.25, 23, 4096};
    std::vector<std::uint8_t> bytes;
    appendDrainOk(bytes, in);
    DrainOkFrame out;
    ASSERT_TRUE(decodeDrainOk(extractOne(bytes), out));
    EXPECT_EQ(out.totalUsage, 12.5);
    EXPECT_EQ(out.lb3, 11.25);
    EXPECT_EQ(out.categoriesUsed, 2u);
  }
  {
    ScrapeOkFrame in{"cdbp_sim_fit_checks 42\n"};
    std::vector<std::uint8_t> bytes;
    appendScrapeOk(bytes, in);
    ScrapeOkFrame out;
    ASSERT_TRUE(decodeScrapeOk(extractOne(bytes), out));
    EXPECT_EQ(out.text, in.text);
  }
  {
    ErrorFrame in{ErrorCode::kBadPolicySpec, "unknown spec 'xx'"};
    std::vector<std::uint8_t> bytes;
    appendError(bytes, in);
    ErrorFrame out;
    ASSERT_TRUE(decodeError(extractOne(bytes), out));
    EXPECT_EQ(out.code, ErrorCode::kBadPolicySpec);
    EXPECT_EQ(out.message, in.message);
  }
}

TEST(ServeProtocol, EmptyBodyRequests) {
  for (auto append : {appendStats, appendDrain, appendScrape}) {
    std::vector<std::uint8_t> bytes;
    append(bytes);
    EXPECT_EQ(bytes.size(), 5u);  // u32 length (=1) + type byte
    FrameView frame = extractOne(bytes);
    EXPECT_TRUE(decodeEmpty(frame));
  }
}

TEST(ServeProtocol, TruncatedBuffersNeedMore) {
  HelloFrame hello{kProtocolVersion, 0, 1.0, 8.0, 42, "t", "ff"};
  std::vector<std::uint8_t> bytes;
  appendHello(bytes, hello);
  // Every strict prefix of a valid frame is kNeedMore, never a crash and
  // never a bogus frame.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameView frame;
    std::size_t consumed = 0;
    EXPECT_EQ(extractFrame(bytes.data(), cut, kDefaultMaxFramePayload, frame,
                           consumed),
              ExtractStatus::kNeedMore)
        << "prefix length " << cut;
  }
}

TEST(ServeProtocol, TruncatedBodiesRejectedByDecoders) {
  HelloFrame hello{kProtocolVersion, 0, 1.0, 8.0, 42, "tenant", "cdt-ff"};
  std::vector<std::uint8_t> bytes;
  appendHello(bytes, hello);
  FrameView whole = extractOne(bytes);
  // Chop the decoded payload at every length: the decoder must return
  // false for all of them (and true only for the full body).
  for (std::size_t n = 0; n < whole.payloadSize; ++n) {
    FrameView cut{whole.type, whole.payload, n};
    HelloFrame out;
    EXPECT_FALSE(decodeHello(cut, out)) << "body length " << n;
  }
  HelloFrame out;
  EXPECT_TRUE(decodeHello(whole, out));
}

TEST(ServeProtocol, TrailingBytesRejected) {
  PlaceFrame place{0.5, 0.0, 1.0};
  std::vector<std::uint8_t> bytes;
  appendPlace(bytes, place);
  bytes.push_back(0x00);            // widen the payload by one junk byte...
  bytes[0] = static_cast<std::uint8_t>(bytes[0] + 1);  // ...and the prefix
  PlaceFrame out;
  EXPECT_FALSE(decodePlace(extractOne(bytes), out));
}

TEST(ServeProtocol, OversizedLengthPrefix) {
  std::vector<std::uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  FrameView frame;
  std::size_t consumed = 0;
  EXPECT_EQ(extractFrame(bytes.data(), bytes.size(), kDefaultMaxFramePayload,
                         frame, consumed),
            ExtractStatus::kOversized);
}

TEST(ServeProtocol, ZeroLengthFrameDecodesAsMalformed) {
  std::vector<std::uint8_t> bytes = {0x00, 0x00, 0x00, 0x00};
  FrameView frame;
  std::size_t consumed = 0;
  ASSERT_EQ(extractFrame(bytes.data(), bytes.size(), kDefaultMaxFramePayload,
                         frame, consumed),
            ExtractStatus::kFrame);
  EXPECT_EQ(consumed, 4u);
  // No type byte: the extractor tags it with the reply-only kError type,
  // which no request dispatcher accepts — the server answers
  // kMalformedFrame.
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.payloadSize, 0u);
}

TEST(ServeProtocol, BackToBackFramesExtractInOrder) {
  std::vector<std::uint8_t> bytes;
  appendStats(bytes);
  appendPlace(bytes, PlaceFrame{0.25, 1.0, 2.0});
  appendDrain(bytes);

  std::size_t offset = 0;
  std::vector<FrameType> types;
  while (offset < bytes.size()) {
    FrameView frame;
    std::size_t consumed = 0;
    ASSERT_EQ(extractFrame(bytes.data() + offset, bytes.size() - offset,
                           kDefaultMaxFramePayload, frame, consumed),
              ExtractStatus::kFrame);
    types.push_back(frame.type);
    offset += consumed;
  }
  EXPECT_EQ(types, (std::vector<FrameType>{FrameType::kStats,
                                           FrameType::kPlace,
                                           FrameType::kDrain}));
}

TEST(ServeProtocol, ErrorCodeNames) {
  EXPECT_STREQ(errorCodeName(ErrorCode::kBadPolicySpec), "bad-policy-spec");
  EXPECT_STREQ(errorCodeName(ErrorCode::kOutOfOrder), "out-of-order");
  EXPECT_STREQ(errorCodeName(ErrorCode::kUnsupportedVersion),
               "unsupported-version");
  EXPECT_STREQ(errorCodeName(static_cast<ErrorCode>(999)), "unknown");
}

TEST(ServeProtocol, NegotiateVersion) {
  EXPECT_EQ(negotiateVersion(0), 0);  // below the floor: reject
  EXPECT_EQ(negotiateVersion(1), 1);  // v1 client: speak v1
  EXPECT_EQ(negotiateVersion(2), 2);
  EXPECT_EQ(negotiateVersion(3), 2);   // future client: cap at ours
  EXPECT_EQ(negotiateVersion(999), 2);
}

TEST(ServeProtocol, BatchRoundTrip) {
  BatchFrame in;
  BatchOp place;
  place.kind = kBatchOpPlace;
  place.place = PlaceFrame{0.5, 1.0, 9.0};
  BatchOp depart;
  depart.kind = kBatchOpDepart;
  depart.depart = DepartFrame{4.5};
  in.ops = {place, depart, place};

  std::vector<std::uint8_t> bytes;
  appendBatch(bytes, in);
  FrameView frame = extractOne(bytes);
  ASSERT_EQ(frame.type, FrameType::kBatch);

  BatchFrame out;
  ASSERT_TRUE(decodeBatch(frame, out));
  ASSERT_EQ(out.ops.size(), 3u);
  EXPECT_EQ(out.ops[0].kind, kBatchOpPlace);
  EXPECT_EQ(out.ops[0].place.size, 0.5);
  EXPECT_EQ(out.ops[0].place.departure, 9.0);
  EXPECT_EQ(out.ops[1].kind, kBatchOpDepart);
  EXPECT_EQ(out.ops[1].depart.time, 4.5);
  EXPECT_EQ(out.ops[2].place.arrival, 1.0);
}

TEST(ServeProtocol, BatchOkRoundTripSuccessAndFailure) {
  {
    BatchOkFrame in;
    BatchResultEntry placed;
    placed.kind = kBatchOpPlace;
    placed.placed = PlacedFrame{7, 2, 1, 3};
    BatchResultEntry departed;
    departed.kind = kBatchOpDepart;
    departed.depart = DepartOkFrame{12, 4};
    in.results = {placed, departed};

    std::vector<std::uint8_t> bytes;
    appendBatchOk(bytes, in);
    BatchOkFrame out;
    ASSERT_TRUE(decodeBatchOk(extractOne(bytes), out));
    ASSERT_EQ(out.results.size(), 2u);
    EXPECT_EQ(out.results[0].placed.item, 7u);
    EXPECT_EQ(out.results[0].placed.bin, 2);
    EXPECT_EQ(out.results[1].depart.drained, 12u);
    EXPECT_EQ(out.failed, 0);
  }
  {
    // Partial failure: one completed result, op 1 rejected.
    BatchOkFrame in;
    BatchResultEntry placed;
    placed.placed = PlacedFrame{0, 0, 1, 0};
    in.results = {placed};
    in.failed = 1;
    in.failedIndex = 1;
    in.errorCode = ErrorCode::kOutOfOrder;
    in.errorMessage = "arrival behind the session watermark";

    std::vector<std::uint8_t> bytes;
    appendBatchOk(bytes, in);
    BatchOkFrame out;
    ASSERT_TRUE(decodeBatchOk(extractOne(bytes), out));
    ASSERT_EQ(out.results.size(), 1u);
    EXPECT_EQ(out.failed, 1);
    EXPECT_EQ(out.failedIndex, 1u);
    EXPECT_EQ(out.errorCode, ErrorCode::kOutOfOrder);
    EXPECT_EQ(out.errorMessage, in.errorMessage);
  }
}

TEST(ServeProtocol, BatchDecoderRejectsBadKind) {
  BatchFrame in;
  BatchOp op;
  op.kind = kBatchOpPlace;
  in.ops = {op};
  std::vector<std::uint8_t> bytes;
  appendBatch(bytes, in);
  // Wire layout: u32 length | u8 type | u32 count | u8 kind | ... —
  // corrupt the kind byte to an unknown discriminant.
  bytes[9] = 0x7F;
  BatchFrame out;
  EXPECT_FALSE(decodeBatch(extractOne(bytes), out));
}

TEST(ServeProtocol, BatchDecoderRejectsOverCount) {
  // A count above kMaxBatchOps is rejected before any op is read — the
  // body here deliberately contains zero ops.
  BatchFrame empty;
  std::vector<std::uint8_t> bytes;
  appendBatch(bytes, empty);
  std::uint32_t count = static_cast<std::uint32_t>(kMaxBatchOps) + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[5 + i] = static_cast<std::uint8_t>(count >> (8 * i));
  }
  BatchFrame out;
  EXPECT_FALSE(decodeBatch(extractOne(bytes), out));
}

TEST(ServeProtocol, TruncatedBatchBodiesRejected) {
  BatchFrame in;
  BatchOp place;
  place.place = PlaceFrame{0.5, 1.0, 2.0};
  BatchOp depart;
  depart.kind = kBatchOpDepart;
  depart.depart = DepartFrame{1.5};
  in.ops = {place, depart};
  std::vector<std::uint8_t> bytes;
  appendBatch(bytes, in);
  FrameView whole = extractOne(bytes);
  for (std::size_t n = 0; n < whole.payloadSize; ++n) {
    FrameView cut{whole.type, whole.payload, n};
    BatchFrame out;
    EXPECT_FALSE(decodeBatch(cut, out)) << "body length " << n;
  }
  BatchFrame out;
  EXPECT_TRUE(decodeBatch(whole, out));
}

TEST(ServeProtocol, TruncatedBatchOkBodiesRejected) {
  BatchOkFrame in;
  BatchResultEntry placed;
  placed.placed = PlacedFrame{3, 1, 0, 2};
  in.results = {placed};
  in.failed = 1;
  in.failedIndex = 1;
  in.errorCode = ErrorCode::kBadItem;
  in.errorMessage = "size must be positive";
  std::vector<std::uint8_t> bytes;
  appendBatchOk(bytes, in);
  FrameView whole = extractOne(bytes);
  for (std::size_t n = 0; n < whole.payloadSize; ++n) {
    FrameView cut{whole.type, whole.payload, n};
    BatchOkFrame out;
    EXPECT_FALSE(decodeBatchOk(cut, out)) << "body length " << n;
  }
  BatchOkFrame out;
  EXPECT_TRUE(decodeBatchOk(whole, out));
}

}  // namespace
}  // namespace cdbp::serve
