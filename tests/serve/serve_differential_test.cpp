// Differential pin of the serve daemon: for every registered policy spec
// and both placement engines, a session driven over a socketpair must be
// BIT-IDENTICAL to simulateStream on the same item sequence — same bin
// for every item, same totalUsage/lb3 doubles, same sim.fit_checks
// telemetry delta. The daemon routes each session through the shared
// StreamEngine, so this suite pins that the protocol layer adds no
// divergence (encoding is bit-exact, ordering is preserved, sessions are
// isolated) — and, since the sharded redesign, that the shard count is
// invisible to results: the 4-loop server below must match the 1-loop
// server and the local engine decision for decision, whether sessions
// are driven by pipelined PLACE/BATCH bursts or by the explicit Batch
// builder.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <string>
#include <thread>
#include <vector>

#include "online/policy_factory.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/streaming.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/generators.hpp"

namespace cdbp::serve {
namespace {

const std::vector<std::string>& allSpecs() {
  static const std::vector<std::string> specs = {
      "ff",     "bf",    "wf",          "nf",      "rf(seed=7)",
      "hybrid-ff", "cdt-ff", "cd-ff",   "combined-ff", "min-ext",
      "dep-bf"};
  return specs;
}

std::uint64_t fitChecks() {
  return telemetry::Registry::global().counter("sim.fit_checks").value();
}

struct LocalRun {
  StreamResult result;
  std::vector<PlacedFrame> placements;
  std::uint64_t fitChecks = 0;
};

LocalRun runLocal(const std::vector<StreamItem>& items,
                  const std::string& spec, const PolicyContext& context,
                  PlacementEngine engine) {
  PolicyPtr policy = makePolicy(spec, context);
  StreamOptions options;
  options.engine = engine;
  StreamEngine streamEngine(*policy, options);
  LocalRun run;
  std::uint64_t before = fitChecks();
  for (const StreamItem& item : items) {
    StreamEngine::Placement placed = streamEngine.place(item);
    run.placements.push_back(PlacedFrame{placed.item, placed.bin,
                                         placed.openedNewBin ? std::uint8_t{1}
                                                             : std::uint8_t{0},
                                         placed.category});
  }
  run.result = streamEngine.finish();
  run.fitChecks = fitChecks() - before;
  return run;
}

struct ServedRun {
  DrainOkFrame result;
  std::vector<PlacedFrame> placements;
  std::uint64_t fitChecks = 0;
};

/// How a served session pushes its items down the wire.
enum class Driver {
  kPipelined,  ///< queuePlace/flushQueued/readPlaced (BATCH frames on v2)
  kBatch,      ///< explicit Batch builder, one BATCH per burst
};

Client openSession(Server& server, const std::string& spec,
                   const PolicyContext& context, PlacementEngine engine) {
  int fds[2];
  EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  server.adoptConnection(fds[1]);
  Client client(fds[0]);

  HelloFrame hello;
  hello.version = kProtocolVersion;
  hello.engine = engine == PlacementEngine::kLinearScan ? 1 : 0;
  hello.minDuration = context.minDuration;
  hello.mu = context.mu;
  hello.seed = context.seed;
  hello.tenant = spec;
  hello.policySpec = spec;
  client.hello(hello);
  return client;
}

ServedRun runServed(Server& server, const std::vector<StreamItem>& items,
                    const std::string& spec, const PolicyContext& context,
                    PlacementEngine engine, Driver driver) {
  Client client = openSession(server, spec, context, engine);

  ServedRun run;
  std::uint64_t before = fitChecks();
  // Bursts exercise frame coalescing on the wire (many frames or many
  // sub-ops per read) rather than lockstep request/reply only.
  constexpr std::size_t kBurst = 64;
  std::size_t i = 0;
  while (i < items.size()) {
    std::size_t end = std::min(i + kBurst, items.size());
    if (driver == Driver::kPipelined) {
      for (std::size_t j = i; j < end; ++j) {
        client.queuePlace(items[j].size, items[j].arrival,
                          items[j].departure);
      }
      client.flushQueued();
      for (std::size_t j = i; j < end; ++j) {
        run.placements.push_back(client.readPlaced());
      }
    } else {
      Client::Batch batch = client.batch();
      for (std::size_t j = i; j < end; ++j) {
        batch.place(items[j].size, items[j].arrival, items[j].departure);
      }
      BatchOkFrame ok = batch.send();
      EXPECT_EQ(ok.failed, 0);
      EXPECT_EQ(ok.results.size(), end - i);
      for (const BatchResultEntry& entry : ok.results) {
        EXPECT_EQ(entry.kind, kBatchOpPlace);
        run.placements.push_back(entry.placed);
      }
    }
    i = end;
  }
  run.result = client.drain();
  run.fitChecks = fitChecks() - before;
  return run;
}

std::vector<StreamItem> makeWorkload(std::uint64_t seed) {
  // A generated instance, canonicalized to nondecreasing arrivals the
  // same way the streaming differential suite does.
  WorkloadSpec spec;
  spec.numItems = 400;
  spec.mu = 16.0;
  spec.arrivalRate = 24.0;
  Instance inst(generateWorkload(spec, seed).sortedByArrival());
  std::vector<StreamItem> items;
  items.reserve(inst.size());
  for (const Item& item : inst.items()) {
    items.push_back(StreamItem{item.size, item.arrival(), item.departure()});
  }
  return items;
}

void expectBitIdentical(const ServedRun& served, const LocalRun& local) {
  ASSERT_EQ(served.placements.size(), local.placements.size());
  for (std::size_t i = 0; i < local.placements.size(); ++i) {
    ASSERT_EQ(served.placements[i].item, local.placements[i].item)
        << "item " << i;
    ASSERT_EQ(served.placements[i].bin, local.placements[i].bin)
        << "item " << i;
    ASSERT_EQ(served.placements[i].openedNewBin,
              local.placements[i].openedNewBin)
        << "item " << i;
    ASSERT_EQ(served.placements[i].category, local.placements[i].category)
        << "item " << i;
  }
  // Exact doubles: the protocol carries f64 bit patterns, so the
  // aggregates agree to the last bit, not to a tolerance.
  EXPECT_EQ(served.result.items, local.result.items);
  EXPECT_EQ(served.result.totalUsage, local.result.totalUsage);
  EXPECT_EQ(served.result.binsOpened, local.result.binsOpened);
  EXPECT_EQ(served.result.maxOpenBins, local.result.maxOpenBins);
  EXPECT_EQ(served.result.categoriesUsed, local.result.categoriesUsed);
  EXPECT_EQ(served.result.lb3, local.result.lb3);
  EXPECT_EQ(served.result.peakOpenItems, local.result.peakOpenItems);
  if (telemetry::kEnabled) {
    // Same decisions -> same number of fit checks, counted through the
    // shared registry from the server's loop thread. (Valid because the
    // sweeps below run one session at a time.)
    EXPECT_EQ(served.fitChecks, local.fitChecks);
  }
}

/// Every spec × engine through one server, one session at a time.
void sweepAgainstLocal(Server& server, Driver driver) {
  server.start();
  std::vector<StreamItem> items = makeWorkload(20260807);
  PolicyContext context;
  context.minDuration = 1.0;
  context.mu = 16.0;
  context.seed = 7;

  for (PlacementEngine engine :
       {PlacementEngine::kIndexed, PlacementEngine::kLinearScan}) {
    const char* engineName =
        engine == PlacementEngine::kIndexed ? "indexed" : "linear";
    for (const std::string& spec : allSpecs()) {
      SCOPED_TRACE(std::string(engineName) + " / " + spec);
      ServedRun served =
          runServed(server, items, spec, context, engine, driver);
      LocalRun local = runLocal(items, spec, context, engine);
      expectBitIdentical(served, local);
    }
  }
  server.stop();
  server.join();
}

TEST(ServeDifferential, EverySpecAndEngineBitIdenticalToSimulateStream) {
  Server server(ServerOptionsBuilder().loopThreads(1).build());
  sweepAgainstLocal(server, Driver::kPipelined);
}

TEST(ServeDifferential, FourShardServerBitIdenticalToSimulateStream) {
  // The shard count must be invisible to results: sessions are pinned to
  // one loop and share nothing but the tenant table and telemetry, so a
  // 4-loop daemon reproduces the local engine bit for bit too.
  Server server(ServerOptionsBuilder().loopThreads(4).build());
  sweepAgainstLocal(server, Driver::kPipelined);
}

TEST(ServeDifferential, BatchDrivenSessionsBitIdenticalAcrossShards) {
  // Same pin through the v2 Batch builder instead of the pipelined
  // wrapper: sub-op results inside BATCH_OK are the same PLACED mirrors.
  Server server(ServerOptionsBuilder().loopThreads(4).build());
  sweepAgainstLocal(server, Driver::kBatch);
}

TEST(ServeDifferential, ConcurrentTenantsFitCheckTotalsAddUp) {
  if (!telemetry::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  // Four concurrent sessions on four shards, same spec and items each:
  // the shared sim.fit_checks counter must grow by exactly 4x the local
  // single-run delta — shards add telemetry, never lose or double it.
  Server server(ServerOptionsBuilder().loopThreads(4).build());
  server.start();
  std::vector<StreamItem> items = makeWorkload(20260807);
  PolicyContext context;
  context.minDuration = 1.0;
  context.mu = 16.0;
  context.seed = 7;
  LocalRun local =
      runLocal(items, "cdt-ff", context, PlacementEngine::kIndexed);

  std::uint64_t before = fitChecks();
  std::vector<Client> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(
        openSession(server, "cdt-ff", context, PlacementEngine::kIndexed));
  }
  std::vector<std::thread> threads;
  for (Client& client : clients) {
    threads.emplace_back([&client, &items] {
      constexpr std::size_t kBurst = 64;
      std::size_t i = 0;
      while (i < items.size()) {
        std::size_t end = std::min(i + kBurst, items.size());
        for (std::size_t j = i; j < end; ++j) {
          client.queuePlace(items[j].size, items[j].arrival,
                            items[j].departure);
        }
        client.flushQueued();
        while (client.queued() > 0) client.readPlaced();
        i = end;
      }
      client.drain();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fitChecks() - before, 4 * local.fitChecks);
  server.stop();
  server.join();
}

}  // namespace
}  // namespace cdbp::serve
