// serve/address.hpp: the one spec grammar and socket factory shared by
// the daemon, the client library and the example binaries.
#include "serve/address.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string>

namespace cdbp::serve {
namespace {

TEST(ServeAddress, ParseForms) {
  Address addr;
  std::string error;
  ASSERT_TRUE(parseAddress("unix:/tmp/x.sock", addr, error));
  EXPECT_EQ(addr.kind, Address::Kind::kUnix);
  EXPECT_EQ(addr.path, "/tmp/x.sock");

  ASSERT_TRUE(parseAddress("tcp:127.0.0.1:9000", addr, error));
  EXPECT_EQ(addr.kind, Address::Kind::kTcp);
  EXPECT_EQ(addr.host, "127.0.0.1");
  EXPECT_EQ(addr.port, 9000);

  // Bare paths are unix shorthand.
  ASSERT_TRUE(parseAddress("/tmp/bare.sock", addr, error));
  EXPECT_EQ(addr.kind, Address::Kind::kUnix);
  EXPECT_EQ(addr.path, "/tmp/bare.sock");

  // Port 0 parses: it is a valid listen address (ephemeral bind).
  ASSERT_TRUE(parseAddress("tcp:127.0.0.1:0", addr, error));
  EXPECT_EQ(addr.port, 0);

  EXPECT_FALSE(parseAddress("", addr, error));
  EXPECT_FALSE(parseAddress("tcp:nohost", addr, error));
  EXPECT_FALSE(parseAddress("tcp:host:notaport", addr, error));
  EXPECT_FALSE(parseAddress("tcp:host:70000", addr, error));
  EXPECT_FALSE(parseAddress("tcp::7077", addr, error));
  EXPECT_FALSE(parseAddress("unix:", addr, error));
}

TEST(ServeAddress, FormatIsStableUnderReparse) {
  for (const char* spec : {"unix:/tmp/x.sock", "tcp:127.0.0.1:9000",
                           "tcp:localhost:1", "tcp:10.0.0.1:65535"}) {
    Address addr;
    std::string error;
    ASSERT_TRUE(parseAddress(spec, addr, error)) << spec;
    std::string formatted = formatAddress(addr);
    EXPECT_EQ(formatted, spec);
    Address again;
    ASSERT_TRUE(parseAddress(formatted, again, error));
    EXPECT_EQ(formatAddress(again), formatted);
  }
  // The unix shorthand canonicalizes to the explicit form.
  Address bare;
  std::string error;
  ASSERT_TRUE(parseAddress("/tmp/bare.sock", bare, error));
  EXPECT_EQ(formatAddress(bare), "unix:/tmp/bare.sock");
}

// Accepts one pending connection from a non-blocking listener, polling
// briefly (the connect below has already completed, but the kernel may
// need a moment to surface it).
int acceptOne(int listenFd) {
  for (int i = 0; i < 2000; ++i) {
    int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno != EAGAIN && errno != EWOULDBLOCK) break;
    ::usleep(1000);
  }
  return -1;
}

void exchangeByte(int client, int accepted) {
  const char out = 'x';
  ASSERT_EQ(::send(client, &out, 1, MSG_NOSIGNAL), 1);
  char in = 0;
  for (int i = 0; i < 2000; ++i) {
    ssize_t n = ::recv(accepted, &in, 1, 0);
    if (n == 1) break;
    ASSERT_TRUE(n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK));
    ::usleep(1000);
  }
  EXPECT_EQ(in, 'x');
}

TEST(ServeAddress, UnixListenConnectRoundTrip) {
  Address addr;
  addr.kind = Address::Kind::kUnix;
  addr.path = testing::TempDir() + "cdbp_addr_" + std::to_string(::getpid()) +
              ".sock";

  int listenFd = listenStream(addr, /*backlog=*/4);
  ASSERT_GE(listenFd, 0);
  int client = connectStream(addr);
  ASSERT_GE(client, 0);
  int accepted = acceptOne(listenFd);
  ASSERT_GE(accepted, 0);
  exchangeByte(client, accepted);

  ::close(accepted);
  ::close(client);
  // Re-listening on the same path works: listenStream unlinks first.
  int again = listenStream(addr, /*backlog=*/4);
  ASSERT_GE(again, 0);
  ::close(again);
  ::close(listenFd);
  ::unlink(addr.path.c_str());
}

TEST(ServeAddress, TcpEphemeralListenConnectRoundTrip) {
  Address addr;
  addr.kind = Address::Kind::kTcp;
  addr.host = "127.0.0.1";
  addr.port = 0;

  std::uint16_t boundPort = 0;
  int listenFd = listenStream(addr, /*backlog=*/4, &boundPort);
  ASSERT_GE(listenFd, 0);
  ASSERT_GT(boundPort, 0);

  Address connectAddr = addr;
  connectAddr.port = boundPort;
  int client = connectStream(connectAddr);
  ASSERT_GE(client, 0);
  int accepted = acceptOne(listenFd);
  ASSERT_GE(accepted, 0);
  exchangeByte(client, accepted);

  ::close(accepted);
  ::close(client);
  ::close(listenFd);
}

TEST(ServeAddress, ConnectRejectsTcpPortZero) {
  Address addr;
  addr.kind = Address::Kind::kTcp;
  addr.host = "127.0.0.1";
  addr.port = 0;
  EXPECT_THROW(connectStream(addr), std::runtime_error);
}

}  // namespace
}  // namespace cdbp::serve
