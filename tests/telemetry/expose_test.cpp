#include "telemetry/expose.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace cdbp::telemetry {
namespace {

// Tests build snapshots by hand rather than mutating the global registry:
// the exposition is a pure function of the snapshot, and hand-built input
// keeps the expected text independent of what other tests recorded.

TEST(ExposeText, NameMapping) {
  EXPECT_EQ(expositionName("sim.fit_checks"), "cdbp_sim_fit_checks");
  EXPECT_EQ(expositionName("serve.place_ns"), "cdbp_serve_place_ns");
  EXPECT_EQ(expositionName("weird-name with spaces"),
            "cdbp_weird_name_with_spaces");
  EXPECT_EQ(expositionName(""), "cdbp_");
}

TEST(ExposeText, CountersAndGauges) {
  RegistrySnapshot snapshot;
  snapshot.counters.push_back({"sim.fit_checks", 42});
  GaugeSnapshot gauge;
  gauge.value = -3;
  gauge.max = 17;
  snapshot.gauges.push_back({"stream.open_items", gauge});

  std::ostringstream out;
  exposeText(snapshot, out);
  EXPECT_EQ(out.str(),
            "# TYPE cdbp_sim_fit_checks counter\n"
            "cdbp_sim_fit_checks 42\n"
            "# TYPE cdbp_stream_open_items gauge\n"
            "cdbp_stream_open_items -3\n"
            "cdbp_stream_open_items_max 17\n");
}

TEST(ExposeText, HistogramCumulativeBuckets) {
  RegistrySnapshot snapshot;
  HistogramSnapshot hist;
  hist.count = 6;
  hist.sum = 29;
  hist.min = 0;
  hist.max = 9;
  // Samples {0, 1, 3, 3, 9, 13}: bucket 0 (={0}) holds one, bucket 1
  // ([1,1]) one, bucket 2 ([2,3]) two, bucket 4 ([8,15]) two; bucket 3
  // is empty and must still appear with an unchanged cumulative count.
  hist.buckets = {{0, 1}, {1, 1}, {2, 2}, {4, 2}};
  snapshot.histograms.push_back({"sim.scan", hist});

  std::ostringstream out;
  exposeText(snapshot, out);
  EXPECT_EQ(out.str(),
            "# TYPE cdbp_sim_scan histogram\n"
            "cdbp_sim_scan_bucket{le=\"0\"} 1\n"
            "cdbp_sim_scan_bucket{le=\"1\"} 2\n"
            "cdbp_sim_scan_bucket{le=\"3\"} 4\n"
            "cdbp_sim_scan_bucket{le=\"7\"} 4\n"
            "cdbp_sim_scan_bucket{le=\"15\"} 6\n"
            "cdbp_sim_scan_bucket{le=\"+Inf\"} 6\n"
            "cdbp_sim_scan_sum 29\n"
            "cdbp_sim_scan_count 6\n");
}

TEST(ExposeText, EmptySnapshotEmitsNothing) {
  std::ostringstream out;
  exposeText(RegistrySnapshot{}, out);
  EXPECT_EQ(out.str(), "");
}

#if CDBP_TELEMETRY
TEST(ExposeText, LiveRegistryRoundTrip) {
  Registry& registry = Registry::global();
  registry.counter("expose_test.events").add(5);
  registry.gauge("expose_test.level").set(2);
  registry.histogram("expose_test.ns").record(100);

  std::string text = exposeTextString(registry);
  EXPECT_NE(text.find("cdbp_expose_test_events 5\n"), std::string::npos);
  EXPECT_NE(text.find("cdbp_expose_test_level 2\n"), std::string::npos);
  EXPECT_NE(text.find("cdbp_expose_test_ns_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("cdbp_expose_test_ns_sum 100\n"), std::string::npos);
}
#endif

}  // namespace
}  // namespace cdbp::telemetry
