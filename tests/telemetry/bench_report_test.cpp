#include "telemetry/bench_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/json_writer.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace cdbp::telemetry {
namespace {

Flags makeFlags(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  for (std::string& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchReport, DocumentHasSchemaHeader) {
  BenchReport report("unit");
  std::ostringstream os;
  report.write(os);
  std::string out = os.str();
  EXPECT_NE(out.find("\"schema\": \"cdbp-bench-report\""), std::string::npos);
  EXPECT_NE(out.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(out.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(out.find("\"registry\""), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST(BenchReport, ParamsKeepTheirJsonTypes) {
  BenchReport report("unit");
  report.setParam("items", 2000);
  report.setParam("mu", 16.5);
  report.setParam("csv", true);
  report.setParam("filter", "Ddff");
  std::ostringstream os;
  report.write(os);
  std::string out = os.str();
  EXPECT_NE(out.find("\"items\": 2000"), std::string::npos) << out;
  EXPECT_NE(out.find("\"mu\": 16.5"), std::string::npos) << out;
  EXPECT_NE(out.find("\"csv\": true"), std::string::npos) << out;
  EXPECT_NE(out.find("\"filter\": \"Ddff\""), std::string::npos) << out;
}

TEST(BenchReport, TablesEmbedColumnsAndRows) {
  BenchReport report("unit");
  Table table({"mu", "ratio"});
  table.addRow({"2", "1.125"});
  table.addRow({"8", "1.25"});
  report.addTable("ratios", table);
  std::ostringstream os;
  report.write(os);
  std::string out = os.str();
  EXPECT_NE(out.find("\"name\": \"ratios\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"columns\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"1.125\""), std::string::npos) << out;
}

TEST(BenchReport, TimingSeriesStats) {
  BenchReport report("unit");
  BenchTimingSeries& series = report.addTiming("FF/1000", 1000);
  series.addRepSeconds(0.5);
  series.addRepSeconds(0.5);
  EXPECT_DOUBLE_EQ(series.itemsPerSecond(), 2000.0);
  series.setCounterDeltas({{"sim.fit_checks", 42}});
  std::ostringstream os;
  report.write(os);
  std::string out = os.str();
  EXPECT_NE(out.find("\"FF/1000\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"sim.fit_checks\": 42"), std::string::npos) << out;
}

TEST(BenchReport, EmptyTimingSeriesHasZeroThroughput) {
  BenchReport report("unit");
  EXPECT_DOUBLE_EQ(report.addTiming("empty", 10).itemsPerSecond(), 0.0);
}

TEST(BenchReport, DefaultPathFollowsConvention) {
  EXPECT_EQ(BenchReport("fig8").defaultPath(), "BENCH_fig8.json");
}

TEST(BenchReport, WriteIfRequestedNoFlagIsANoOp) {
  BenchReport report("unit");
  Flags flags = makeFlags({});
  std::ostringstream log;
  EXPECT_FALSE(report.writeIfRequested(flags, log));
  EXPECT_TRUE(log.str().empty());
}

TEST(BenchReport, WriteIfRequestedWritesToExplicitPath) {
  BenchReport report("unit");
  std::string path = ::testing::TempDir() + "cdbp_bench_report_test.json";
  Flags flags = makeFlags({"--json=" + path});
  std::ostringstream log;
  EXPECT_TRUE(report.writeIfRequested(flags, log));
  EXPECT_NE(log.str().find(path), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("cdbp-bench-report"), std::string::npos);
  in.close();
  std::remove(path.c_str());
}

TEST(BenchReport, WriteRegistrySnapshotSection) {
  Registry reg;
  reg.counter("c").add(3);
  reg.gauge("g").set(2);
  reg.histogram("h").record(9);
  RegistrySnapshot snap = reg.snapshot();
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.beginObject().key("registry");
  writeRegistrySnapshot(snap, w);
  w.endObject();
  w.done();
  std::string out = os.str();
  EXPECT_NE(out.find("\"counters\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"gauges\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"histograms\""), std::string::npos) << out;
  if constexpr (kEnabled) {
    EXPECT_NE(out.find("\"c\":3"), std::string::npos) << out;
  }
}

}  // namespace
}  // namespace cdbp::telemetry
