// End-to-end checks that the instrumentation wired through the simulator,
// the online policies and the offline algorithms actually records. All
// value assertions are gated on telemetry::kEnabled so the suite also
// passes on a -DCDBP_TELEMETRY=OFF build (where every delta must be zero).
#include <gtest/gtest.h>

#include <sstream>

#include "offline/ddff.hpp"
#include "offline/dual_coloring.hpp"
#include "online/any_fit.hpp"
#include "online/classify_departure.hpp"
#include "sim/simulator.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/registry.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

using telemetry::Registry;
using telemetry::RegistrySnapshot;

Instance smallWorkload(std::size_t n = 60) {
  WorkloadSpec spec;
  spec.numItems = n;
  spec.mu = 8.0;
  return generateWorkload(spec, 5);
}

std::uint64_t delta(const RegistrySnapshot& before,
                    const RegistrySnapshot& after, std::string_view name) {
  return after.counter(name) - before.counter(name);
}

TEST(TelemetryInstrumentation, SimulatorCountsEventsAndPlacements) {
  Instance inst = smallWorkload();
  RegistrySnapshot before = Registry::global().snapshot();
  FirstFitPolicy ff;
  simulateOnline(inst, ff);
  RegistrySnapshot after = Registry::global().snapshot();
  if constexpr (telemetry::kEnabled) {
    // One arrival event per item plus the departures processed before the
    // last arrival (the tail of the queue is only drained when tracing).
    EXPECT_GE(delta(before, after, "sim.events_processed"), inst.size());
    EXPECT_LE(delta(before, after, "sim.events_processed"), 2 * inst.size());
    EXPECT_EQ(delta(before, after, "sim.placements_new_bin") +
                  delta(before, after, "sim.placements_existing_bin"),
              inst.size());
    EXPECT_GE(delta(before, after, "sim.bins_opened"), 1u);
    EXPECT_GE(delta(before, after, "sim.bins_opened"),
              delta(before, after, "sim.bins_closed"));
    EXPECT_GE(delta(before, after, "sim.fit_checks"),
              delta(before, after, "sim.placements_existing_bin"));
  } else {
    EXPECT_EQ(after.counter("sim.events_processed"), 0u);
    EXPECT_EQ(after.counter("sim.fit_checks"), 0u);
  }
}

TEST(TelemetryInstrumentation, PolicyCountersAttributeOpens) {
  Instance inst = smallWorkload();
  RegistrySnapshot before = Registry::global().snapshot();
  FirstFitPolicy ff;
  simulateOnline(inst, ff);
  auto cdt = ClassifyByDepartureFF::withKnownDurations(inst.minDuration(),
                                                       inst.durationRatio());
  simulateOnline(inst, cdt);
  RegistrySnapshot after = Registry::global().snapshot();
  if constexpr (telemetry::kEnabled) {
    EXPECT_GE(delta(before, after, "policy.any_fit.opens"), 1u);
    EXPECT_GE(delta(before, after, "policy.any_fit.fit_attempts"), 1u);
    EXPECT_GE(delta(before, after, "policy.cdt_ff.opens"), 1u);
  }
}

TEST(TelemetryInstrumentation, DdffSplitsSortAndPack) {
  Instance inst = smallWorkload();
  RegistrySnapshot before = Registry::global().snapshot();
  std::uint64_t sortBefore =
      Registry::global().histogram("offline.ddff.sort_ns").count();
  durationDescendingFirstFit(inst);
  RegistrySnapshot after = Registry::global().snapshot();
  if constexpr (telemetry::kEnabled) {
    EXPECT_EQ(delta(before, after, "offline.ddff.runs"), 1u);
    EXPECT_GE(delta(before, after, "offline.ddff.bins_opened"), 1u);
    // The pack loop's per-bin probes run through the shared substrate now,
    // so they land in sim.fit_checks (the former offline.ddff.bins_scanned).
    EXPECT_GE(delta(before, after, "sim.fit_checks"),
              delta(before, after, "offline.ddff.bins_opened"));
    EXPECT_EQ(Registry::global().histogram("offline.ddff.sort_ns").count(),
              sortBefore + 1);
  }
}

TEST(TelemetryInstrumentation, DualColoringTimesBothPhases) {
  Instance inst = smallWorkload();
  RegistrySnapshot before = Registry::global().snapshot();
  std::uint64_t p2Before =
      Registry::global().histogram("offline.dual_coloring.phase2_ns").count();
  dualColoring(inst);
  RegistrySnapshot after = Registry::global().snapshot();
  if constexpr (telemetry::kEnabled) {
    EXPECT_EQ(delta(before, after, "offline.dual_coloring.runs"), 1u);
    EXPECT_EQ(
        Registry::global().histogram("offline.dual_coloring.phase2_ns").count(),
        p2Before + 1);
  }
}

TEST(TelemetryInstrumentation, FitChecksCountPolicyQueriesOnly) {
  // Regression: sim.fit_checks used to double-count — the simulator's
  // validation re-check of the policy's answer went through the same
  // counted BinManager::fits as the policy's own probes. Validation now
  // uses the uncounted wouldFit, so the counter reflects policy work only:
  // under the linear view, one count per probed bin (item 0 scans zero
  // bins, item 1 probes one), under the indexed engine one count per query
  // (both items query once). Before the fix each placement into an
  // existing bin added one more.
  Instance inst =
      InstanceBuilder().add(0.4, 0, 10).add(0.4, 1, 10).build();
  struct Case {
    PlacementEngine engine;
    std::uint64_t expected;
    const char* label;
  };
  for (const Case& c : {Case{PlacementEngine::kLinearScan, 1, "linear"},
                        Case{PlacementEngine::kIndexed, 2, "indexed"}}) {
    SimOptions options;
    options.engine = c.engine;
    RegistrySnapshot before = Registry::global().snapshot();
    FirstFitPolicy ff;
    SimResult r = simulateOnline(inst, ff, options);
    RegistrySnapshot after = Registry::global().snapshot();
    ASSERT_EQ(r.binsOpened, 1u);
    if constexpr (telemetry::kEnabled) {
      EXPECT_EQ(delta(before, after, "sim.fit_checks"), c.expected)
          << "engine=" << c.label;
    }
  }
}

TEST(TelemetryInstrumentation, SimulatorEmitsChromeTrace) {
  Instance inst = smallWorkload(20);
  telemetry::ChromeTrace trace;
  SimOptions options;
  options.chromeTrace = &trace;
  FirstFitPolicy ff;
  simulateOnline(inst, ff, options);
  // One complete event per item plus counter samples and bin metadata —
  // trace emission is independent of the CDBP_TELEMETRY metric toggle.
  EXPECT_GE(trace.eventCount(), inst.size());
  std::ostringstream os;
  trace.write(os);
  EXPECT_EQ(os.str().front(), '[');
  EXPECT_NE(os.str().find("open_bins"), std::string::npos);
}

TEST(TelemetryInstrumentation, OpenBinsGaugeIsZeroAfterDrain) {
  // Tracing drains the departure queue at end of run, closing every bin.
  Instance inst = smallWorkload();
  telemetry::ChromeTrace trace;
  SimOptions options;
  options.chromeTrace = &trace;
  FirstFitPolicy ff;
  simulateOnline(inst, ff, options);
  RegistrySnapshot snap = Registry::global().snapshot();
  for (const auto& [name, g] : snap.gauges) {
    if (name == "sim.open_bins") {
      EXPECT_EQ(g.value, 0);
      if constexpr (telemetry::kEnabled) {
        EXPECT_GE(g.max, 1);
      }
    }
  }
}

}  // namespace
}  // namespace cdbp
