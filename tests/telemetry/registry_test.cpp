#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace cdbp::telemetry {
namespace {

// Every test uses its own Registry instance (not Registry::global()) so
// the instrumented library code running in other tests cannot interfere.
// Update-path assertions are gated on kEnabled: with CDBP_TELEMETRY=0 the
// metric bodies compile to no-ops and all reads return zero.

TEST(TelemetryRegistry, CounterAddAndValue) {
  Registry reg;
  Counter& c = reg.counter("c");
  c.add();
  c.add(4);
  if constexpr (kEnabled) {
    EXPECT_EQ(c.value(), 5u);
  } else {
    EXPECT_EQ(c.value(), 0u);
  }
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryRegistry, SameNameSameMetric) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &reg.counter("y"));
}

TEST(TelemetryRegistry, GaugeTracksMax) {
  Registry reg;
  Gauge& g = reg.gauge("g");
  g.set(3);
  g.set(9);
  g.set(5);
  if constexpr (kEnabled) {
    EXPECT_EQ(g.value(), 5);
    EXPECT_EQ(g.max(), 9);
  }
}

TEST(TelemetryRegistry, HistogramBucketing) {
  // Bucket b holds samples with bit_width == b: {0}, {1}, {2,3}, {4..7}...
  EXPECT_EQ(Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(Histogram::bucketIndex(4), 3u);
  EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}), 64u);
  EXPECT_EQ(Histogram::bucketFloor(0), 0u);
  EXPECT_EQ(Histogram::bucketFloor(1), 1u);
  EXPECT_EQ(Histogram::bucketFloor(3), 4u);
}

TEST(TelemetryRegistry, HistogramRecordsStats) {
  Registry reg;
  Histogram& h = reg.histogram("h");
  h.record(0);
  h.record(3);
  h.record(100);
  if constexpr (kEnabled) {
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 103u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_EQ(h.bucketCount(Histogram::bucketIndex(3)), 1u);
  }
}

TEST(TelemetryRegistry, EmptyHistogramMinIsZero) {
  Registry reg;
  EXPECT_EQ(reg.histogram("h").min(), 0u);
}

TEST(TelemetryRegistry, SnapshotCapturesAllKinds) {
  Registry reg;
  reg.counter("a.count").add(2);
  reg.gauge("a.gauge").set(7);
  reg.histogram("a.hist").record(5);
  RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "a.count");
  if constexpr (kEnabled) {
    EXPECT_EQ(snap.counter("a.count"), 2u);
    EXPECT_EQ(snap.gauges[0].second.value, 7);
    EXPECT_EQ(snap.histograms[0].second.count, 1u);
    EXPECT_DOUBLE_EQ(snap.histograms[0].second.mean(), 5.0);
  }
  EXPECT_EQ(snap.counter("missing"), 0u);
}

TEST(TelemetryRegistry, SnapshotNamesAreSorted) {
  Registry reg;
  reg.counter("z");
  reg.counter("a");
  reg.counter("m");
  RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[1].first, "m");
  EXPECT_EQ(snap.counters[2].first, "z");
}

TEST(TelemetryRegistry, DiffCountersDropsZeroDeltas) {
  Registry reg;
  Counter& moving = reg.counter("moving");
  reg.counter("static").add(5);
  RegistrySnapshot before = reg.snapshot();
  moving.add(3);
  reg.counter("fresh").add(1);
  RegistrySnapshot after = reg.snapshot();
  auto deltas = diffCounters(before, after);
  if constexpr (kEnabled) {
    ASSERT_EQ(deltas.size(), 2u);
    EXPECT_EQ(deltas[0].first, "fresh");
    EXPECT_EQ(deltas[0].second, 1u);
    EXPECT_EQ(deltas[1].first, "moving");
    EXPECT_EQ(deltas[1].second, 3u);
  } else {
    EXPECT_TRUE(deltas.empty());
  }
}

TEST(TelemetryRegistry, ResetZeroesButKeepsNames) {
  Registry reg;
  reg.counter("c").add(4);
  reg.gauge("g").set(4);
  reg.histogram("h").record(4);
  reg.reset();
  RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counter("c"), 0u);
  EXPECT_EQ(snap.gauges[0].second.value, 0);
  EXPECT_EQ(snap.histograms[0].second.count, 0u);
}

TEST(TelemetryRegistry, ScopedTimerRecordsOneSample) {
  Registry reg;
  Histogram& h = reg.histogram("span_ns");
  { ScopedTimer t(h); }
  if constexpr (kEnabled) {
    EXPECT_EQ(h.count(), 1u);
  }
}

TEST(TelemetryRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace cdbp::telemetry
