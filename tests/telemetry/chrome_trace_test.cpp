#include "telemetry/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace cdbp::telemetry {
namespace {

TEST(ChromeTrace, EmptyTraceIsAnEmptyArray) {
  ChromeTrace trace;
  EXPECT_EQ(trace.eventCount(), 0u);
  std::ostringstream os;
  trace.write(os);
  EXPECT_EQ(os.str(), "[]\n");
}

TEST(ChromeTrace, CompleteEventFields) {
  ChromeTrace trace;
  trace.addComplete("item 0", "placement", 1500.0, 250.0, 1, 3,
                    {{"size", 0.4}});
  EXPECT_EQ(trace.eventCount(), 1u);
  std::ostringstream os;
  trace.write(os);
  std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"item 0\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"ts\":1500.0"), std::string::npos) << out;
  EXPECT_NE(out.find("\"dur\":250.0"), std::string::npos) << out;
  EXPECT_NE(out.find("\"pid\":1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"tid\":3"), std::string::npos) << out;
  EXPECT_NE(out.find("\"size\":0.4"), std::string::npos) << out;
}

TEST(ChromeTrace, CounterEvent) {
  ChromeTrace trace;
  trace.addCounter("open_bins", 10.0, 1, 4.0);
  std::ostringstream os;
  trace.write(os);
  std::string out = os.str();
  EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos) << out;
  EXPECT_NE(out.find("open_bins"), std::string::npos) << out;
}

TEST(ChromeTrace, InstantEvent) {
  ChromeTrace trace;
  trace.addInstant("tick", "sim", 5.0, 1, 2);
  std::ostringstream os;
  trace.write(os);
  EXPECT_NE(os.str().find("\"ph\":\"i\""), std::string::npos) << os.str();
}

TEST(ChromeTrace, MetadataNamesRows) {
  ChromeTrace trace;
  trace.setProcessName(1, "simulator");
  trace.setThreadName(1, 2, "bin 2 (cat 0)");
  trace.addInstant("tick", "sim", 0.0, 1, 2);
  std::ostringstream os;
  trace.write(os);
  std::string out = os.str();
  EXPECT_NE(out.find("process_name"), std::string::npos) << out;
  EXPECT_NE(out.find("thread_name"), std::string::npos) << out;
  EXPECT_NE(out.find("simulator"), std::string::npos) << out;
  EXPECT_NE(out.find("bin 2 (cat 0)"), std::string::npos) << out;
}

TEST(ChromeTrace, OutputIsOneJsonArray) {
  ChromeTrace trace;
  trace.addComplete("a", "c", 0.0, 1.0, 1, 1);
  trace.addComplete("b", "c", 1.0, 1.0, 1, 2);
  std::ostringstream os;
  trace.write(os);
  std::string out = os.str();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), '\n');
  EXPECT_EQ(out[out.size() - 2], ']');
}

}  // namespace
}  // namespace cdbp::telemetry
