// Concurrency exercise for the telemetry update path; runs under the tsan
// preset (the TelemetryConcurrency suite is in the sanitizer priority
// regex). All updates are relaxed atomics — TSan must stay silent.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace cdbp::telemetry {
namespace {

constexpr int kThreads = 4;
constexpr std::uint64_t kIters = 20000;

TEST(TelemetryConcurrency, CountersAreExactUnderContention) {
  Registry reg;
  Counter& c = reg.counter("contended");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kIters; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  if constexpr (kEnabled) {
    EXPECT_EQ(c.value(), kThreads * kIters);
  }
}

TEST(TelemetryConcurrency, HistogramCountSumMinMaxUnderContention) {
  Registry reg;
  Histogram& h = reg.histogram("contended");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        h.record(static_cast<std::uint64_t>(t) * kIters + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if constexpr (kEnabled) {
    EXPECT_EQ(h.count(), kThreads * kIters);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), kThreads * kIters - 1);
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      total += h.bucketCount(b);
    }
    EXPECT_EQ(total, h.count());
  }
}

TEST(TelemetryConcurrency, GaugeMaxIsHighWaterMark) {
  Registry reg;
  Gauge& g = reg.gauge("contended");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        g.set(static_cast<std::int64_t>(i % 100) + t);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if constexpr (kEnabled) {
    EXPECT_EQ(g.max(), 99 + kThreads - 1);
    EXPECT_GE(g.value(), 0);
  }
}

TEST(TelemetryConcurrency, RegistryLookupRacesCreation) {
  // Threads race to find-or-create the same and different names; all must
  // agree on the resulting addresses.
  Registry reg;
  std::vector<std::thread> threads;
  std::vector<Counter*> shared(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &shared, t] {
      for (int i = 0; i < 500; ++i) {
        reg.counter("own." + std::to_string(t) + "." + std::to_string(i));
      }
      shared[static_cast<std::size_t>(t)] = &reg.counter("shared");
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(shared[static_cast<std::size_t>(t)], shared[0]);
  }
}

TEST(TelemetryConcurrency, SnapshotWhileUpdating) {
  Registry reg;
  Counter& c = reg.counter("snap");
  std::thread writer([&c] {
    for (std::uint64_t i = 0; i < kIters; ++i) c.add();
  });
  for (int i = 0; i < 50; ++i) {
    RegistrySnapshot snap = reg.snapshot();
    EXPECT_LE(snap.counter("snap"), kThreads * kIters);
  }
  writer.join();
  if constexpr (kEnabled) {
    EXPECT_EQ(reg.snapshot().counter("snap"), kIters);
  }
}

TEST(TelemetryConcurrency, SiteMacrosFromManyThreads) {
  RegistrySnapshot before = Registry::global().snapshot();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        CDBP_TELEM_COUNT("test.concurrency.macro", 1);
        CDBP_TELEM_HIST("test.concurrency.hist", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  RegistrySnapshot after = Registry::global().snapshot();
  if constexpr (kEnabled) {
    EXPECT_EQ(after.counter("test.concurrency.macro") -
                  before.counter("test.concurrency.macro"),
              kThreads * kIters);
  } else {
    EXPECT_EQ(after.counter("test.concurrency.macro"), 0u);
  }
}

}  // namespace
}  // namespace cdbp::telemetry
