#include "io/csv_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(CsvIo, RoundTripsAnInstanceThroughStreams) {
  WorkloadSpec spec;
  spec.numItems = 50;
  Instance original = generateWorkload(spec, 9);
  std::stringstream buffer;
  writeInstanceCsv(original, buffer);
  Instance loaded = readInstanceCsv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (ItemId i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].size, original[i].size);
    EXPECT_DOUBLE_EQ(loaded[i].arrival(), original[i].arrival());
    EXPECT_DOUBLE_EQ(loaded[i].departure(), original[i].departure());
  }
}

TEST(CsvIo, ParsesHandwrittenInput) {
  std::istringstream in(
      "size,arrival,departure\n"
      "0.5,0,4\n"
      "0.25,1.5,3\n"
      "\n");  // trailing blank line tolerated
  Instance inst = readInstanceCsv(in);
  ASSERT_EQ(inst.size(), 2u);
  EXPECT_DOUBLE_EQ(inst[1].size, 0.25);
  EXPECT_DOUBLE_EQ(inst[1].arrival(), 1.5);
}

TEST(CsvIo, RejectsMissingHeader) {
  std::istringstream in("0.5,0,4\n");
  EXPECT_THROW(readInstanceCsv(in), CsvError);
}

TEST(CsvIo, RejectsWrongArity) {
  std::istringstream in("size,arrival,departure\n0.5,0\n");
  EXPECT_THROW(readInstanceCsv(in), CsvError);
}

TEST(CsvIo, RejectsNonNumericCellWithLineNumber) {
  std::istringstream in("size,arrival,departure\n0.5,zero,4\n");
  try {
    readInstanceCsv(in);
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(CsvIo, ModelViolationsSurfaceAsInstanceError) {
  std::istringstream in("size,arrival,departure\n1.5,0,4\n");
  EXPECT_THROW(readInstanceCsv(in), InstanceError);
}

TEST(CsvIo, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_THROW(readInstanceCsv(in), CsvError);
}

TEST(CsvIo, FileRoundTrip) {
  WorkloadSpec spec;
  spec.numItems = 20;
  Instance original = generateWorkload(spec, 3);
  std::string path = ::testing::TempDir() + "/cdbp_csv_io_test.csv";
  saveInstanceCsv(original, path);
  Instance loaded = loadInstanceCsv(path);
  EXPECT_EQ(loaded.size(), original.size());
}

TEST(CsvIo, LoadMissingFileThrows) {
  EXPECT_THROW(loadInstanceCsv("/nonexistent/definitely/not/here.csv"), CsvError);
}

TEST(CsvIo, PackingExportContainsAssignments) {
  Instance inst = InstanceBuilder().add(0.5, 0, 2).add(0.5, 0, 2).build();
  Packing packing(inst, {0, 0});
  std::ostringstream out;
  writePackingCsv(packing, out);
  std::string text = out.str();
  EXPECT_NE(text.find("item,bin,size,arrival,departure"), std::string::npos);
  EXPECT_NE(text.find("0,0,0.5,0,2"), std::string::npos);
  EXPECT_NE(text.find("1,0,0.5,0,2"), std::string::npos);
}

TEST(CsvIo, StepFunctionExportListsSegments) {
  StepFunction f;
  f.add({0, 2}, 1.5);
  std::ostringstream out;
  writeStepFunctionCsv(f, out);
  EXPECT_NE(out.str().find("0,2,1.5"), std::string::npos);
}

}  // namespace
}  // namespace cdbp
