#include "io/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cdbp {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(jsonEscape("hello world"), "hello world");
  EXPECT_EQ(jsonEscape(""), "");
}

TEST(JsonEscape, EscapesQuotesAndBackslash) {
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonEscape, PassesUtf8BytesThrough) {
  // Multi-byte UTF-8 payload needs no escaping (bytes >= 0x80).
  EXPECT_EQ(jsonEscape("µ=16"), "µ=16");
}

TEST(JsonDouble, IntegralValuesKeepTypeMarker) {
  EXPECT_EQ(jsonDouble(1.0), "1.0");
  EXPECT_EQ(jsonDouble(0.0), "0.0");
  EXPECT_EQ(jsonDouble(-3.0), "-3.0");
}

TEST(JsonDouble, NonFiniteIsNull) {
  EXPECT_EQ(jsonDouble(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(jsonDouble(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(jsonDouble(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonDouble, RoundTripsExactly) {
  for (double v : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23, -2.5}) {
    std::string s = jsonDouble(v);
    EXPECT_DOUBLE_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(JsonWriter, GoldenNestedDocument) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.beginObject();
  w.key("name").value("bench");
  w.key("count").value(std::int64_t{3});
  w.key("ok").value(true);
  w.key("none").nullValue();
  w.key("xs").beginArray().value(1.5).value(2.0).endArray();
  w.key("inner").beginObject().key("k").value("v").endObject();
  w.endObject();
  w.done();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"bench\",\n"
            "  \"count\": 3,\n"
            "  \"ok\": true,\n"
            "  \"none\": null,\n"
            "  \"xs\": [\n"
            "    1.5,\n"
            "    2.0\n"
            "  ],\n"
            "  \"inner\": {\n"
            "    \"k\": \"v\"\n"
            "  }\n"
            "}");
}

TEST(JsonWriter, CompactMode) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.beginArray().value(1.0).value("a").beginObject().endObject().endArray();
  w.done();
  EXPECT_EQ(os.str(), "[1.0,\"a\",{}]");
}

TEST(JsonWriter, EmptyContainers) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.beginObject();
  w.key("a").beginArray().endArray();
  w.key("o").beginObject().endObject();
  w.endObject();
  w.done();
  EXPECT_EQ(os.str(), "{\n  \"a\": [],\n  \"o\": {}\n}");
}

TEST(JsonWriter, ThrowsOnValueWhereKeyRequired) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject();
  EXPECT_THROW(w.value("orphan"), std::logic_error);
}

TEST(JsonWriter, ThrowsOnKeyInsideArray) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginArray();
  EXPECT_THROW(w.key("k"), std::logic_error);
}

TEST(JsonWriter, ThrowsOnMismatchedEnd) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject();
  EXPECT_THROW(w.endArray(), std::logic_error);
}

TEST(JsonWriter, ThrowsOnSecondTopLevelValue) {
  std::ostringstream os;
  JsonWriter w(os);
  w.value(1.0);
  EXPECT_THROW(w.value(2.0), std::logic_error);
}

TEST(JsonWriter, DoneThrowsOnIncompleteDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject();
  EXPECT_THROW(w.done(), std::logic_error);
}

TEST(JsonWriter, EscapesKeysAndStringValues) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.beginObject().key("a\"b").value("c\nd").endObject();
  w.done();
  EXPECT_EQ(os.str(), "{\"a\\\"b\":\"c\\nd\"}");
}

}  // namespace
}  // namespace cdbp
