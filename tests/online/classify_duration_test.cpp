#include "online/classify_duration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/ratios.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(ClassifyByDuration, RejectsInvalidParameters) {
  EXPECT_THROW(ClassifyByDurationFF(0, 2), std::invalid_argument);
  EXPECT_THROW(ClassifyByDurationFF(1, 1.0), std::invalid_argument);
  EXPECT_THROW(ClassifyByDurationFF(1, 0.5), std::invalid_argument);
}

TEST(ClassifyByDuration, GeometricCategories) {
  ClassifyByDurationFF policy(1.0, 2.0);
  // Category i holds durations in [2^i, 2^(i+1)).
  EXPECT_EQ(policy.categoryOf(1.0), 0);
  EXPECT_EQ(policy.categoryOf(1.99), 0);
  EXPECT_EQ(policy.categoryOf(2.0), 1);
  EXPECT_EQ(policy.categoryOf(3.999), 1);
  EXPECT_EQ(policy.categoryOf(4.0), 2);
  EXPECT_EQ(policy.categoryOf(0.5), -1);  // below base: earlier category
}

TEST(ClassifyByDuration, PaperFootnoteExample) {
  // Footnote 2: alpha = 2, durations 1.5..4.5 -> three non-empty
  // categories [1,2), [2,4), [4,8).
  ClassifyByDurationFF policy(1.0, 2.0);
  std::set<int> cats;
  for (double d : {1.5, 1.9, 2.0, 3.5, 4.0, 4.5}) cats.insert(policy.categoryOf(d));
  EXPECT_EQ(cats, (std::set<int>{0, 1, 2}));
}

TEST(ClassifyByDuration, BoundaryToleratesFloatNoise) {
  ClassifyByDurationFF policy(1.0, 2.0);
  // 2^k computed through pow/log round-trips still lands in category k.
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(policy.categoryOf(std::pow(2.0, k)), k) << k;
  }
}

TEST(ClassifyByDuration, KnownDurationsProducesAtMostNCategories) {
  for (double mu : {1.0, 2.0, 4.0, 16.0, 100.0, 1000.0}) {
    auto policy = ClassifyByDurationFF::withKnownDurations(1.0, mu);
    std::size_t n = ratios::optimalDurationCategories(mu);
    std::set<int> cats;
    for (double d = 1.0; d <= mu; d *= 1.05) cats.insert(policy.categoryOf(d));
    cats.insert(policy.categoryOf(mu));
    EXPECT_LE(cats.size(), n + 1) << "mu=" << mu;  // +1 for the closed top end
  }
}

TEST(ClassifyByDuration, DifferentCategoriesNeverShareBins) {
  Instance inst = InstanceBuilder()
                      .add(0.1, 0, 1.5)   // category 0 (alpha=2, base=1)
                      .add(0.1, 0, 3.0)   // category 1
                      .build();
  ClassifyByDurationFF policy(1.0, 2.0);
  SimResult r = simulateOnline(inst, policy);
  EXPECT_EQ(r.binsOpened, 2u);
}

TEST(ClassifyByDuration, CategoryCountRespectsTheoremFiveBound) {
  WorkloadSpec spec;
  spec.numItems = 400;
  spec.minDuration = 1.0;
  spec.mu = 64.0;
  Instance inst = generateWorkload(spec, 9);
  double mu = inst.durationRatio();
  double alpha = 2.0;
  ClassifyByDurationFF policy(inst.minDuration(), alpha);
  SimResult r = simulateOnline(inst, policy);
  double bound = std::ceil(std::log(mu) / std::log(alpha) - 1e-12) + 1;
  EXPECT_LE(r.categoriesUsed, static_cast<std::size_t>(bound));
}

// Per-category First Fit inequality from [24], the basis of Theorem 5:
// usage(FF on R_i) <= (mu_i + 3) d(R_i) + span(R_i).
class CdTheorem5 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdTheorem5, AggregateUsageWithinTheoremFiveInequality) {
  WorkloadSpec spec;
  spec.numItems = 250;
  spec.mu = 32.0;
  Instance inst = generateWorkload(spec, GetParam());
  double alpha = 2.0;
  ClassifyByDurationFF policy(inst.minDuration(), alpha);
  SimResult r = simulateOnline(inst, policy);
  ASSERT_FALSE(r.packing.validate().has_value());
  // Inequality (10) summed over categories:
  // usage <= (alpha+3) d(R) + (ceil(log_alpha mu) + 1) span(R).
  double mu = inst.durationRatio();
  double cats = std::max(1.0, std::ceil(std::log(mu) / std::log(alpha) - 1e-12) + 1);
  double bound = (alpha + 3.0) * inst.demand() + cats * inst.span();
  EXPECT_LE(r.totalUsage, bound + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdTheorem5,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace cdbp
