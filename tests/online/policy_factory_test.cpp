#include "online/policy_factory.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(PolicyFactory, NonClairvoyantRosterComposition) {
  std::vector<PolicyPtr> roster = nonClairvoyantRoster();
  ASSERT_EQ(roster.size(), 6u);
  for (const PolicyPtr& policy : roster) {
    EXPECT_FALSE(policy->clairvoyant()) << policy->name();
  }
}

TEST(PolicyFactory, ClairvoyantRosterComposition) {
  std::vector<PolicyPtr> roster = clairvoyantRoster(1.0, 16.0);
  ASSERT_EQ(roster.size(), 3u);
  for (const PolicyPtr& policy : roster) {
    EXPECT_TRUE(policy->clairvoyant()) << policy->name();
  }
}

TEST(PolicyFactory, FullRosterHasUniqueNames) {
  std::vector<PolicyPtr> roster = fullRoster(1.0, 16.0);
  EXPECT_EQ(roster.size(), 9u);
  std::set<std::string> names;
  for (const PolicyPtr& policy : roster) names.insert(policy->name());
  EXPECT_EQ(names.size(), roster.size());
}

TEST(PolicyFactory, EveryRosterPolicyRunsEndToEnd) {
  WorkloadSpec spec;
  spec.numItems = 150;
  Instance inst = generateWorkload(spec, 2);
  for (const PolicyPtr& policy :
       fullRoster(inst.minDuration(), inst.durationRatio())) {
    SimResult r = simulateOnline(inst, *policy);
    EXPECT_FALSE(r.packing.validate().has_value()) << policy->name();
  }
}

TEST(PolicyFactory, MuOneIsAccepted) {
  // All items same duration: the known-durations constructors must not
  // divide by zero or produce alpha <= 1.
  EXPECT_NO_THROW(clairvoyantRoster(2.0, 1.0));
  Instance inst = InstanceBuilder().add(0.5, 0, 1).add(0.5, 2, 3).build();
  for (const PolicyPtr& policy : clairvoyantRoster(1.0, 1.0)) {
    SimResult r = simulateOnline(inst, *policy);
    EXPECT_FALSE(r.packing.validate().has_value()) << policy->name();
  }
}

}  // namespace
}  // namespace cdbp
