#include "online/policy_factory.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(PolicyFactory, NonClairvoyantRosterComposition) {
  std::vector<PolicyPtr> roster = nonClairvoyantRoster();
  ASSERT_EQ(roster.size(), 6u);
  for (const PolicyPtr& policy : roster) {
    EXPECT_FALSE(policy->clairvoyant()) << policy->name();
  }
}

TEST(PolicyFactory, ClairvoyantRosterComposition) {
  std::vector<PolicyPtr> roster = clairvoyantRoster(1.0, 16.0);
  ASSERT_EQ(roster.size(), 3u);
  for (const PolicyPtr& policy : roster) {
    EXPECT_TRUE(policy->clairvoyant()) << policy->name();
  }
}

TEST(PolicyFactory, FullRosterHasUniqueNames) {
  std::vector<PolicyPtr> roster = fullRoster(1.0, 16.0);
  EXPECT_EQ(roster.size(), 9u);
  std::set<std::string> names;
  for (const PolicyPtr& policy : roster) names.insert(policy->name());
  EXPECT_EQ(names.size(), roster.size());
}

TEST(PolicyFactory, EveryRosterPolicyRunsEndToEnd) {
  WorkloadSpec spec;
  spec.numItems = 150;
  Instance inst = generateWorkload(spec, 2);
  for (const PolicyPtr& policy :
       fullRoster(inst.minDuration(), inst.durationRatio())) {
    SimResult r = simulateOnline(inst, *policy);
    EXPECT_FALSE(r.packing.validate().has_value()) << policy->name();
  }
}

TEST(PolicyFactory, MuOneIsAccepted) {
  // All items same duration: the known-durations constructors must not
  // divide by zero or produce alpha <= 1.
  EXPECT_NO_THROW(clairvoyantRoster(2.0, 1.0));
  Instance inst = InstanceBuilder().add(0.5, 0, 1).add(0.5, 2, 3).build();
  for (const PolicyPtr& policy : clairvoyantRoster(1.0, 1.0)) {
    SimResult r = simulateOnline(inst, *policy);
    EXPECT_FALSE(r.packing.validate().has_value()) << policy->name();
  }
}

TEST(MakePolicy, ParsesBareNamesAndAliases) {
  EXPECT_EQ(makePolicy("ff")->name(), "FirstFit");
  EXPECT_EQ(makePolicy("bf")->name(), "BestFit");
  EXPECT_EQ(makePolicy("wf")->name(), "WorstFit");
  EXPECT_EQ(makePolicy("nf")->name(), "NextFit");
  EXPECT_EQ(makePolicy("min-ext")->name(), "MinExtension");
  EXPECT_EQ(makePolicy("minext")->name(), "MinExtension");
  EXPECT_EQ(makePolicy("dep-bf")->name(), makePolicy("dep-bf")->name());
  // Aliases resolve to the same policy as the canonical spec.
  PolicyContext context;
  context.minDuration = 1.0;
  context.mu = 16.0;
  EXPECT_EQ(makePolicy("cdt", context)->name(),
            makePolicy("cdt-ff", context)->name());
  EXPECT_EQ(makePolicy("cd", context)->name(),
            makePolicy("cd-ff", context)->name());
}

TEST(MakePolicy, ParsesParameterizedSpecs) {
  EXPECT_EQ(makePolicy("cdt-ff(rho=2)")->name(), "CDT-FF(rho=2)");
  PolicyPtr cd = makePolicy("cd-ff(base=1,alpha=4)");
  EXPECT_NE(cd->name().find("alpha=4"), std::string::npos) << cd->name();
  EXPECT_NO_THROW(makePolicy("hybrid-ff(classes=4)"));
  EXPECT_NO_THROW(makePolicy("rf(seed=9)"));
  // Whitespace around names, keys, and values is tolerated.
  EXPECT_EQ(makePolicy("  cdt-ff ( rho = 2 ) ")->name(), "CDT-FF(rho=2)");
}

TEST(MakePolicy, ContextSuppliesClairvoyantDefaults) {
  PolicyContext context;
  context.minDuration = 2.0;
  context.mu = 9.0;
  // rho defaults to sqrt(mu) * Delta = 6.
  EXPECT_EQ(makePolicy("cdt-ff", context)->name(), "CDT-FF(rho=6)");
  // Without a context (minDuration 0) the parameter-free clairvoyant specs
  // have nothing to tune against and must fail loudly.
  EXPECT_THROW(makePolicy("cdt-ff"), std::invalid_argument);
  EXPECT_THROW(makePolicy("cd-ff"), std::invalid_argument);
  EXPECT_THROW(makePolicy("combined-ff"), std::invalid_argument);
  // Explicit parameters need no context.
  EXPECT_NO_THROW(makePolicy("cdt-ff(rho=1.5)"));
}

TEST(MakePolicy, RejectsUnknownSpecWithHelp) {
  try {
    makePolicy("frobnicate");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("frobnicate"), std::string::npos) << message;
    // The error enumerates the valid specs.
    EXPECT_NE(message.find("cdt-ff"), std::string::npos) << message;
    EXPECT_NE(message.find("hybrid-ff"), std::string::npos) << message;
  }
}

TEST(MakePolicy, RejectsMalformedSpecs) {
  EXPECT_THROW(makePolicy(""), std::invalid_argument);
  EXPECT_THROW(makePolicy("cdt-ff(rho=2"), std::invalid_argument);   // no ')'
  EXPECT_THROW(makePolicy("cdt-ff(rho)"), std::invalid_argument);    // no '='
  EXPECT_THROW(makePolicy("cdt-ff(rho=abc)"), std::invalid_argument);
  EXPECT_THROW(makePolicy("ff(bogus=1)"), std::invalid_argument);
  EXPECT_THROW(makePolicy("cdt-ff(rho=2,rho=3,extra=4)"),
               std::invalid_argument);
}

TEST(MakePolicy, EveryGrammarErrorCarriesTheSpecHelp) {
  // Unknown names, unknown keys, and non-numeric values all fail with a
  // message that embeds the full policySpecHelp() text, so a user at any
  // entry point (flag, config, runMany spec) sees the grammar.
  const std::string help = policySpecHelp();
  for (const char* bad :
       {"frobnicate", "ff(bogus=1)", "cdt-ff(rho=abc)", "cdt-ff(rho)",
        "cdt-ff(rho=2", "rf(seed=7f)", "hybrid-ff(classes=4.5)", ""}) {
    try {
      makePolicy(bad);
      FAIL() << "expected std::invalid_argument for spec '" << bad << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(help), std::string::npos)
          << "spec '" << bad << "' error lacks the help text: " << e.what();
    }
  }
}

TEST(MakePolicy, RejectsTrailingJunkInNumericParams) {
  // Partial-prefix parses ("16abc" -> 16) must not slip through.
  EXPECT_THROW(makePolicy("cdt-ff(rho=2.5x)"), std::invalid_argument);
  EXPECT_THROW(makePolicy("cdt-ff(rho=2.5 3)"), std::invalid_argument);
  EXPECT_THROW(makePolicy("rf(seed=9q)"), std::invalid_argument);
  EXPECT_THROW(makePolicy("hybrid-ff(classes=8!)"), std::invalid_argument);
}

TEST(MakePolicy, RejectsNegativeUintWithoutWraparound) {
  // std::stoull would have accepted seed=-1 as 2^64-1; the checked parser
  // rejects the sign outright.
  EXPECT_THROW(makePolicy("rf(seed=-1)"), std::invalid_argument);
  EXPECT_THROW(makePolicy("hybrid-ff(classes=-4)"), std::invalid_argument);
}

TEST(MakePolicy, RejectsHexFloatParams) {
  EXPECT_THROW(makePolicy("cdt-ff(rho=0x1p3)"), std::invalid_argument);
}

TEST(MakePolicy, AcceptsSignedAndExponentDoubles) {
  EXPECT_NO_THROW(makePolicy("cdt-ff(rho=+2.5)"));
  EXPECT_NO_THROW(makePolicy("cdt-ff(rho=2.5e-1)"));
}

TEST(MakePolicy, SpecHelpListsEverySpec) {
  std::string help = policySpecHelp();
  for (const char* name : {"ff", "bf", "wf", "nf", "rf", "hybrid-ff",
                           "cdt-ff", "cd-ff", "combined-ff", "min-ext",
                           "dep-bf"}) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
}

TEST(MakePolicy, ContextForInstanceMatchesRealizedParameters) {
  WorkloadSpec spec;
  spec.numItems = 80;
  spec.mu = 16.0;
  Instance inst = generateWorkload(spec, 3);
  PolicyContext context = PolicyContext::forInstance(inst, 5);
  EXPECT_DOUBLE_EQ(context.minDuration, inst.minDuration());
  EXPECT_DOUBLE_EQ(context.mu, inst.durationRatio());
  EXPECT_EQ(context.seed, 5u);
}

TEST(MakePolicy, EverySpecRunsEndToEnd) {
  WorkloadSpec spec;
  spec.numItems = 100;
  Instance inst = generateWorkload(spec, 4);
  PolicyContext context = PolicyContext::forInstance(inst);
  for (const char* policySpec :
       {"ff", "bf", "wf", "nf", "rf", "hybrid-ff", "cdt-ff", "cd-ff",
        "combined-ff", "min-ext", "dep-bf"}) {
    PolicyPtr policy = makePolicy(policySpec, context);
    SimResult r = simulateOnline(inst, *policy);
    EXPECT_FALSE(r.packing.validate().has_value()) << policySpec;
  }
}

}  // namespace
}  // namespace cdbp
