#include "online/any_fit.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

// All items arrive together; levels after packing reveal each rule.
Instance burst(std::initializer_list<Size> sizes) {
  InstanceBuilder builder;
  Time t = 0;
  for (Size s : sizes) {
    builder.add(s, t, t + 10);
    t += 1e-6;  // strictly increasing arrivals: deterministic order
  }
  return builder.build();
}

TEST(FirstFit, PicksEarliestOpenedFittingBin) {
  // 0.6 -> bin0; 0.6 -> bin1; 0.3 fits bin0 (earliest).
  Instance inst = burst({0.6, 0.6, 0.3});
  FirstFitPolicy ff;
  SimResult r = simulateOnline(inst, ff);
  EXPECT_EQ(r.packing.binOf(2), 0);
  EXPECT_EQ(r.binsOpened, 2u);
}

TEST(BestFit, PicksFullestFittingBin) {
  // 0.7 -> bin0; 0.5 -> bin1; 0.2: fits both, bin0 (0.7) is fuller.
  Instance inst = burst({0.7, 0.5, 0.2});
  BestFitPolicy bf;
  SimResult r = simulateOnline(inst, bf);
  EXPECT_EQ(r.packing.binOf(2), 0);
}

TEST(BestFit, TieGoesToEarliestOpened) {
  Instance inst = burst({0.5, 0.5, 0.5, 0.4});
  // 0.5->bin0, 0.5->bin0 (level 1.0), 0.5->bin1, 0.4->bin1 is only fit...
  // craft: after three items bins are [1.0, 0.5]; 0.4 fits only bin1.
  BestFitPolicy bf;
  SimResult r = simulateOnline(inst, bf);
  EXPECT_EQ(r.packing.binOf(3), 1);
  EXPECT_EQ(r.binsOpened, 2u);
}

TEST(WorstFit, PicksEmptiestFittingBin) {
  // 0.7 -> bin0; 0.5 -> bin1; 0.2: fits both, bin1 (0.5) is emptier.
  Instance inst = burst({0.7, 0.5, 0.2});
  WorstFitPolicy wf;
  SimResult r = simulateOnline(inst, wf);
  EXPECT_EQ(r.packing.binOf(2), 1);
}

TEST(NextFit, OnlyCurrentBinReceivesItems) {
  // 0.6 -> bin0 (current); 0.6 -> bin1 (current moves); 0.3 -> bin1, even
  // though bin0 also fits it.
  Instance inst = burst({0.6, 0.6, 0.3});
  NextFitPolicy nf;
  SimResult r = simulateOnline(inst, nf);
  EXPECT_EQ(r.packing.binOf(2), 1);
}

TEST(NextFit, OpensFreshBinAfterCurrentCloses) {
  Instance inst = InstanceBuilder()
                      .add(0.6, 0, 1)
                      .add(0.3, 5, 6)  // current bin closed at t=1
                      .build();
  NextFitPolicy nf;
  SimResult r = simulateOnline(inst, nf);
  EXPECT_EQ(r.binsOpened, 2u);
}

TEST(RandomFit, NeverOpensWhenSomethingFits) {
  WorkloadSpec spec;
  spec.numItems = 200;
  spec.maxSize = 0.3;
  Instance inst = generateWorkload(spec, 11);
  RandomFitPolicy rf(42);
  SimResult random = simulateOnline(inst, rf);
  // An Any Fit algorithm's open-bin count at any time is at most
  // ... weaker sanity: never more bins than items, packing feasible.
  EXPECT_FALSE(random.packing.validate().has_value());
  // Determinism under the same seed.
  RandomFitPolicy rf2(42);
  SimResult again = simulateOnline(inst, rf2);
  EXPECT_EQ(random.packing.binOf(), again.packing.binOf());
}

TEST(RandomFit, ResetRestoresSeed) {
  Instance inst = burst({0.3, 0.3, 0.3, 0.3, 0.3, 0.3});
  RandomFitPolicy rf(7);
  SimResult first = simulateOnline(inst, rf);
  SimResult second = simulateOnline(inst, rf);  // simulateOnline resets
  EXPECT_EQ(first.packing.binOf(), second.packing.binOf());
}

TEST(AnyFitFamily, AllProduceFeasiblePackingsOnMixedLoad) {
  WorkloadSpec spec;
  spec.numItems = 400;
  spec.mu = 16.0;
  Instance inst = generateWorkload(spec, 3);
  FirstFitPolicy ff;
  BestFitPolicy bf;
  WorstFitPolicy wf;
  NextFitPolicy nf;
  RandomFitPolicy rf(1);
  for (OnlinePolicy* policy :
       std::initializer_list<OnlinePolicy*>{&ff, &bf, &wf, &nf, &rf}) {
    SimResult r = simulateOnline(inst, *policy);
    EXPECT_FALSE(r.packing.validate().has_value()) << policy->name();
  }
}

// Tang et al. 2016 (the result Theorem 5 builds on): First Fit usage is
// bounded by (mu + 3) d(R) + span(R).
class FirstFitTangBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FirstFitTangBound, UsageWithinMuPlusThreeDemandPlusSpan) {
  WorkloadSpec spec;
  spec.numItems = 250;
  spec.mu = 20.0;
  Instance inst = generateWorkload(spec, GetParam());
  FirstFitPolicy ff;
  SimResult r = simulateOnline(inst, ff);
  double bound =
      (inst.durationRatio() + 3.0) * inst.demand() + inst.span();
  EXPECT_LE(r.totalUsage, bound + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FirstFitTangBound,
                         ::testing::Range<std::uint64_t>(40, 52));

TEST(AnyFitFamily, NamesAndClairvoyanceFlags) {
  EXPECT_EQ(FirstFitPolicy().name(), "FirstFit");
  EXPECT_FALSE(FirstFitPolicy().clairvoyant());
  EXPECT_EQ(BestFitPolicy().name(), "BestFit");
  EXPECT_EQ(WorstFitPolicy().name(), "WorstFit");
  EXPECT_EQ(NextFitPolicy().name(), "NextFit");
  EXPECT_EQ(RandomFitPolicy(1).name(), "RandomFit");
}

}  // namespace
}  // namespace cdbp
