#include "online/classify_departure.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "online/any_fit.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(ClassifyByDeparture, RejectsInvalidRho) {
  EXPECT_THROW(ClassifyByDepartureFF(0), std::invalid_argument);
  EXPECT_THROW(ClassifyByDepartureFF(-1), std::invalid_argument);
}

TEST(ClassifyByDeparture, WindowsAreHalfOpenFromBelow) {
  ClassifyByDepartureFF policy(2.0);
  // Window k holds departures in (2k, 2k+2].
  EXPECT_EQ(policy.windowOf(0.5), 0);
  EXPECT_EQ(policy.windowOf(2.0), 0);   // boundary belongs to the lower window
  EXPECT_EQ(policy.windowOf(2.0001), 1);
  EXPECT_EQ(policy.windowOf(4.0), 1);
  EXPECT_EQ(policy.windowOf(10.0), 4);
}

TEST(ClassifyByDeparture, WindowBoundaryToleratesFloatNoise) {
  ClassifyByDepartureFF policy(0.1);
  // 30 * 0.1 is not exact in binary; 3.0 must land in window 29.
  EXPECT_EQ(policy.windowOf(30 * 0.1), 29);
}

TEST(ClassifyByDeparture, KnownDurationsUsesSqrtMuDelta) {
  auto policy = ClassifyByDepartureFF::withKnownDurations(2.0, 16.0);
  EXPECT_DOUBLE_EQ(policy.rho(), 8.0);
  EXPECT_TRUE(policy.clairvoyant());
}

TEST(ClassifyByDeparture, ItemsInDifferentWindowsNeverShare) {
  // Two tiny items that plain FF would co-locate, departing in different
  // windows.
  Instance inst = InstanceBuilder()
                      .add(0.1, 0, 0.5)   // window 0 (rho=1)
                      .add(0.1, 0, 1.7)   // window 1
                      .build();
  ClassifyByDepartureFF policy(1.0);
  SimResult r = simulateOnline(inst, policy);
  EXPECT_EQ(r.binsOpened, 2u);
}

TEST(ClassifyByDeparture, SameWindowSharesViaFirstFit) {
  Instance inst = InstanceBuilder()
                      .add(0.4, 0, 0.9)
                      .add(0.4, 0.1, 0.8)
                      .build();
  ClassifyByDepartureFF policy(1.0);
  SimResult r = simulateOnline(inst, policy);
  EXPECT_EQ(r.binsOpened, 1u);
}

TEST(ClassifyByDeparture, SavesUsageWhenDeparturesAreMixed) {
  // The motivating scenario of §5.2: long items trapped with short ones
  // keep bins open. CDT separates them.
  InstanceBuilder builder;
  for (int i = 0; i < 6; ++i) {
    builder.add(0.45, 0.001 * i, 1.0);         // short, depart ~1
    builder.add(0.45, 0.001 * i + 5e-4, 50.0);  // long, depart 50
  }
  Instance inst = builder.build();

  FirstFitPolicy ff;
  ClassifyByDepartureFF cdt(1.0);
  double ffUsage = simulateOnline(inst, ff).totalUsage;
  double cdtUsage = simulateOnline(inst, cdt).totalUsage;
  EXPECT_LT(cdtUsage, ffUsage);
}

// Inequality (9): usage < (rho/Delta + 2) d(R) + (mu*Delta + rho)/rho * span.
class CdtTheorem4 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdtTheorem4, ProvenUsageInequalityHolds) {
  WorkloadSpec spec;
  spec.numItems = 250;
  spec.mu = 9.0;
  spec.minDuration = 0.5;
  Instance inst = generateWorkload(spec, GetParam());
  double delta = inst.minDuration();
  double mu = inst.durationRatio();
  for (double rhoFactor : {0.5, 1.0, 3.0}) {
    double rho = rhoFactor * std::sqrt(mu) * delta;
    ClassifyByDepartureFF policy(rho);
    SimResult r = simulateOnline(inst, policy);
    ASSERT_FALSE(r.packing.validate().has_value());
    double bound = (rho / delta + 2.0) * inst.demand() +
                   (mu * delta + rho) / rho * inst.span();
    EXPECT_LT(r.totalUsage, bound + 1e-6)
        << "rho=" << rho << " mu=" << mu << " delta=" << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdtTheorem4,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace cdbp
