#include "online/departure_fit.hpp"

#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "online/any_fit.hpp"
#include "sim/simulator.hpp"
#include "workload/adversarial.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(MinExtension, ZeroCostPlacementBeatsFreshBin) {
  // Bin 0 will stay open until t=10; the second item (departing at 8)
  // extends nothing there, so MinExtension co-locates.
  Instance inst = InstanceBuilder().add(0.5, 0, 10).add(0.5, 1, 8).build();
  MinExtensionPolicy policy;
  SimResult r = simulateOnline(inst, policy);
  EXPECT_EQ(r.binsOpened, 1u);
}

TEST(MinExtension, PrefersSmallerExtensionAmongBins) {
  Instance inst = InstanceBuilder()
                      .add(0.5, 0, 5)    // bin 0 ends 5
                      .add(0.5, 0, 9)    // extension cost vs bin0 = 4; new bin = 9
                      .add(0.4, 1, 10)   // bin0 (0.5): ext 5 / bin... bin0 holds both: level 1.0
                      .build();
  MinExtensionPolicy policy;
  SimResult r = simulateOnline(inst, policy);
  // Item 1: extending bin0 (cost 4) beats a fresh bin (cost 9).
  EXPECT_EQ(r.packing.binOf(1), r.packing.binOf(0));
  // Item 2: bin0 is full (1.0) -> fresh bin.
  EXPECT_NE(r.packing.binOf(2), r.packing.binOf(0));
}

TEST(MinExtension, MyopicGreedyStillFallsForTheSliverTrap) {
  // A cautionary result that motivates the paper's CATEGORY-based use of
  // departure times: per-decision greedy clairvoyance does not defuse the
  // sliver cascade. Each sliver's marginal extension cost (mu - 1) is
  // slightly cheaper than a fresh bin (mu), so MinExtension strands bins
  // exactly like First Fit, while classify-by-duration stays near optimal.
  Instance trap = firstFitSliverTrap(8, 24.0);
  FirstFitPolicy ff;
  MinExtensionPolicy minext;
  double ffUsage = simulateOnline(trap, ff).totalUsage;
  double meUsage = simulateOnline(trap, minext).totalUsage;
  EXPECT_NEAR(meUsage, ffUsage, 0.05 * ffUsage);
}

TEST(DepartureAlignedBF, GroupsSimilarDepartures) {
  // Two open bins ending at 10 and 100 (sizes 0.6 keep them apart); an
  // item departing at 12 joins the t=10 bin.
  Instance inst = InstanceBuilder()
                      .add(0.6, 0, 10)
                      .add(0.6, 0.1, 100)
                      .add(0.3, 0.2, 12)
                      .build();
  DepartureAlignedBestFit policy;
  SimResult r = simulateOnline(inst, policy);
  EXPECT_EQ(r.packing.binOf(2), r.packing.binOf(0));
}

TEST(DepartureFitPolicies, FeasibleOnRandomWorkloads) {
  WorkloadSpec spec;
  spec.numItems = 400;
  spec.mu = 32.0;
  Instance inst = generateWorkload(spec, 6);
  MinExtensionPolicy minext;
  DepartureAlignedBestFit aligned;
  for (OnlinePolicy* policy :
       std::initializer_list<OnlinePolicy*>{&minext, &aligned}) {
    SimResult r = simulateOnline(inst, *policy);
    EXPECT_FALSE(r.packing.validate().has_value()) << policy->name();
    EXPECT_GE(r.totalUsage + 1e-6, lowerBounds(inst).ceilIntegral);
  }
}

TEST(DepartureFitPolicies, ResetClearsTrackers) {
  Instance inst = InstanceBuilder().add(0.5, 0, 10).add(0.5, 1, 8).build();
  MinExtensionPolicy policy;
  SimResult first = simulateOnline(inst, policy);
  SimResult second = simulateOnline(inst, policy);
  EXPECT_EQ(first.packing.binOf(), second.packing.binOf());
}

}  // namespace
}  // namespace cdbp
