#include "online/combined.hpp"

#include <gtest/gtest.h>

#include "online/classify_departure.hpp"
#include "online/classify_duration.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(Combined, RejectsInvalidParameters) {
  EXPECT_THROW(CombinedClassifyFF(0, 2), std::invalid_argument);
  EXPECT_THROW(CombinedClassifyFF(1, 1), std::invalid_argument);
  EXPECT_THROW(CombinedClassifyFF(1, 2, 0), std::invalid_argument);
}

TEST(Combined, ClassOfSplitsByDurationThenDeparture) {
  CombinedClassifyFF policy(1.0, 4.0);
  // Duration 1 -> class 0, duration 5 -> class 1 (alpha=4).
  Item shortItem(0, 0.1, 0, 1);
  Item longItem(1, 0.1, 0, 5);
  EXPECT_EQ(policy.classOf(shortItem).first, 0);
  EXPECT_EQ(policy.classOf(longItem).first, 1);
  // Same duration class, departures far apart -> different windows.
  Item early(2, 0.1, 0, 1);
  Item late(3, 0.1, 100, 101);
  EXPECT_EQ(policy.classOf(early).first, policy.classOf(late).first);
  EXPECT_NE(policy.classOf(early).second, policy.classOf(late).second);
}

TEST(Combined, DifferentDurationClassesNeverShare) {
  Instance inst = InstanceBuilder()
                      .add(0.1, 0, 1)     // class 0
                      .add(0.1, 0, 100)   // much longer class
                      .build();
  CombinedClassifyFF policy(1.0, 2.0);
  SimResult r = simulateOnline(inst, policy);
  EXPECT_EQ(r.binsOpened, 2u);
}

TEST(Combined, SameClassAndWindowShares) {
  Instance inst = InstanceBuilder()
                      .add(0.3, 0, 1.1)
                      .add(0.3, 0.05, 1.15)
                      .build();
  CombinedClassifyFF policy(1.0, 2.0);
  SimResult r = simulateOnline(inst, policy);
  EXPECT_EQ(r.binsOpened, 1u);
}

TEST(Combined, ResetClearsDenseCategoryMap) {
  Instance inst = InstanceBuilder().add(0.3, 0, 1.1).add(0.3, 5, 9).build();
  CombinedClassifyFF policy(1.0, 2.0);
  SimResult first = simulateOnline(inst, policy);
  SimResult second = simulateOnline(inst, policy);
  EXPECT_EQ(first.packing.binOf(), second.packing.binOf());
  EXPECT_EQ(first.categoriesUsed, second.categoriesUsed);
}

TEST(Combined, FeasibleAcrossWorkloads) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    WorkloadSpec spec;
    spec.numItems = 300;
    spec.mu = 24.0;
    Instance inst = generateWorkload(spec, seed);
    auto policy =
        CombinedClassifyFF::withKnownDurations(inst.minDuration(),
                                               inst.durationRatio());
    SimResult r = simulateOnline(inst, policy);
    EXPECT_FALSE(r.packing.validate().has_value());
  }
}

TEST(Combined, CompetitiveWithSingleStrategiesOnMixedLoad) {
  // Not a theorem — a regression guard: on a workload mixing wide duration
  // spread with dense departures, the combined policy should not be
  // dramatically worse than the better single strategy.
  WorkloadSpec spec;
  spec.numItems = 800;
  spec.mu = 64.0;
  spec.durations = DurationDist::kBimodal;
  Instance inst = generateWorkload(spec, 77);
  double delta = inst.minDuration();
  double mu = inst.durationRatio();

  auto cdt = ClassifyByDepartureFF::withKnownDurations(delta, mu);
  auto cd = ClassifyByDurationFF::withKnownDurations(delta, mu);
  auto combined = CombinedClassifyFF::withKnownDurations(delta, mu);
  double cdtUsage = simulateOnline(inst, cdt).totalUsage;
  double cdUsage = simulateOnline(inst, cd).totalUsage;
  double combinedUsage = simulateOnline(inst, combined).totalUsage;
  EXPECT_LT(combinedUsage, 1.5 * std::min(cdtUsage, cdUsage));
}

}  // namespace
}  // namespace cdbp
