#include "online/hybrid_ff.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(HybridFF, SizeClassesAreGeometric) {
  HybridFirstFitPolicy policy(8);
  EXPECT_EQ(policy.sizeClass(1.0), 0);    // (1/2, 1]
  EXPECT_EQ(policy.sizeClass(0.51), 0);
  EXPECT_EQ(policy.sizeClass(0.5), 1);    // (1/4, 1/2]
  EXPECT_EQ(policy.sizeClass(0.26), 1);
  EXPECT_EQ(policy.sizeClass(0.25), 2);   // (1/8, 1/4]
  EXPECT_EQ(policy.sizeClass(0.13), 2);
}

TEST(HybridFF, TinySizesFallIntoLastClass) {
  HybridFirstFitPolicy policy(4);
  EXPECT_EQ(policy.sizeClass(1e-6), 3);
  EXPECT_EQ(policy.sizeClass(0.0626), 3);
}

TEST(HybridFF, DifferentClassesNeverShareBins) {
  // A big and a small item that would fit together under plain First Fit.
  Instance inst = InstanceBuilder().add(0.6, 0, 4).add(0.2, 0.5, 4).build();
  HybridFirstFitPolicy policy;
  SimResult r = simulateOnline(inst, policy);
  EXPECT_EQ(r.binsOpened, 2u);
  EXPECT_NE(r.packing.binOf(0), r.packing.binOf(1));
}

TEST(HybridFF, SameClassUsesFirstFit) {
  Instance inst = InstanceBuilder()
                      .add(0.3, 0, 4)
                      .add(0.3, 0, 4)
                      .add(0.3, 0, 4)
                      .add(0.3, 0.5, 4)  // class (1/4,1/2]: fits bin0? 0.9+0.3>1 -> second bin
                      .build();
  HybridFirstFitPolicy policy;
  SimResult r = simulateOnline(inst, policy);
  EXPECT_EQ(r.packing.binOf(0), r.packing.binOf(1));
  EXPECT_EQ(r.packing.binOf(1), r.packing.binOf(2));
  EXPECT_NE(r.packing.binOf(3), r.packing.binOf(0));
}

TEST(HybridFF, FeasibleOnRandomWorkloads) {
  WorkloadSpec spec;
  spec.numItems = 500;
  spec.mu = 8.0;
  Instance inst = generateWorkload(spec, 5);
  HybridFirstFitPolicy policy;
  SimResult r = simulateOnline(inst, policy);
  EXPECT_FALSE(r.packing.validate().has_value());
}

}  // namespace
}  // namespace cdbp
