#include "cost/billing.hpp"

#include <gtest/gtest.h>

#include "online/any_fit.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(BillingModel, ContinuousBillsExactUsage) {
  BillingModel model = BillingModel::continuous(2.0);
  EXPECT_DOUBLE_EQ(model.billedDuration(3.7), 3.7);
}

TEST(BillingModel, MeteredRoundsUpToGranularity) {
  BillingModel hourly = BillingModel::metered(60.0);
  EXPECT_DOUBLE_EQ(hourly.billedDuration(1.0), 60.0);
  EXPECT_DOUBLE_EQ(hourly.billedDuration(60.0), 60.0);
  EXPECT_DOUBLE_EQ(hourly.billedDuration(60.5), 120.0);
  EXPECT_DOUBLE_EQ(hourly.billedDuration(119.9), 120.0);
}

TEST(BillingModel, GranularityToleratesFloatNoise) {
  BillingModel model = BillingModel::metered(0.1);
  // 30 * 0.1 is inexact in binary but must bill as exactly 3.0.
  EXPECT_NEAR(model.billedDuration(30 * 0.1), 3.0, 1e-9);
}

TEST(BillingModel, MinimumChargeApplies) {
  BillingModel model = BillingModel::metered(1.0, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(model.billedDuration(0.5), 5.0);
  EXPECT_DOUBLE_EQ(model.billedDuration(7.2), 8.0);
}

TEST(EvaluateCost, CountsEveryBusyPeriodAsAnAcquisition) {
  // One bin with a gap: two rentals.
  Instance inst = InstanceBuilder().add(0.5, 0, 2).add(0.5, 10, 13).build();
  Packing packing(inst, {0, 0});
  CostBreakdown cost = evaluateCost(packing, BillingModel::continuous());
  EXPECT_EQ(cost.acquisitions, 2u);
  EXPECT_DOUBLE_EQ(cost.rawUsage, 5.0);
  EXPECT_DOUBLE_EQ(cost.total, 5.0);
}

TEST(EvaluateCost, HourlyBillingInflatesShortRentals) {
  Instance inst = InstanceBuilder().add(0.5, 0, 2).add(0.5, 10, 13).build();
  Packing packing(inst, {0, 0});
  CostBreakdown cost = evaluateCost(packing, BillingModel::metered(60.0, 0.5));
  EXPECT_DOUBLE_EQ(cost.billedUsage, 120.0);
  EXPECT_DOUBLE_EQ(cost.total, 60.0);
  EXPECT_NEAR(cost.roundingOverhead(), 24.0, 1e-9);
}

TEST(EvaluateCost, UnitPriceScalesLinearly) {
  Instance inst = InstanceBuilder().add(0.5, 0, 4).build();
  Packing packing(inst, {0});
  CostBreakdown cheap = evaluateCost(packing, BillingModel::continuous(1.0));
  CostBreakdown pricey = evaluateCost(packing, BillingModel::continuous(3.0));
  EXPECT_DOUBLE_EQ(pricey.total, 3.0 * cheap.total);
}

TEST(EvaluateCost, ContinuousCostEqualsTotalUsageOnRealPackings) {
  WorkloadSpec spec;
  spec.numItems = 300;
  Instance inst = generateWorkload(spec, 4);
  FirstFitPolicy ff;
  SimResult r = simulateOnline(inst, ff);
  CostBreakdown cost = evaluateCost(r.packing, BillingModel::continuous());
  EXPECT_NEAR(cost.total, r.totalUsage, 1e-6);
  EXPECT_NEAR(cost.rawUsage, r.totalUsage, 1e-6);
}

TEST(EvaluateCost, EmptyPackingCostsNothing) {
  Instance inst;
  Packing packing(inst, {});
  CostBreakdown cost = evaluateCost(packing, BillingModel::metered(60.0));
  EXPECT_DOUBLE_EQ(cost.total, 0.0);
  EXPECT_EQ(cost.acquisitions, 0u);
  EXPECT_DOUBLE_EQ(cost.roundingOverhead(), 1.0);
}

}  // namespace
}  // namespace cdbp
