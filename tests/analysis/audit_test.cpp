#include "analysis/audit.hpp"

#include <gtest/gtest.h>

#include "offline/ddff.hpp"
#include "online/classify_departure.hpp"
#include "online/classify_duration.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(Audit, FeasibilityPassesOnValidPacking) {
  Instance inst = InstanceBuilder().add(0.5, 0, 2).add(0.5, 0, 2).build();
  Packing packing(inst, {0, 0});
  AuditReport report = auditFeasibility(inst, packing);
  EXPECT_TRUE(report.allHold()) << report.describe();
  EXPECT_EQ(report.checks.size(), 3u);
}

TEST(Audit, FeasibilityFailsOnOverfullBin) {
  Instance inst = InstanceBuilder().add(0.7, 0, 2).add(0.7, 0, 2).build();
  Packing packing(inst, {0, 0});
  AuditReport report = auditFeasibility(inst, packing);
  EXPECT_FALSE(report.allHold());
  EXPECT_NE(report.describe().find("FAIL"), std::string::npos);
}

TEST(Audit, CheckDescribeFormatsBothOutcomes) {
  AuditCheck good{"good", 1.0, 2.0, true};
  AuditCheck bad{"bad", 3.0, 2.0, false};
  EXPECT_NE(good.describe().find("[ok]"), std::string::npos);
  EXPECT_NE(bad.describe().find("[FAIL]"), std::string::npos);
}

class AuditSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AuditSweep, AllFourTheoremAuditsHoldOnRandomWorkloads) {
  WorkloadSpec spec;
  spec.numItems = 150;
  spec.mu = 12.0;
  Instance inst = generateWorkload(spec, GetParam());
  double delta = inst.minDuration();
  double mu = inst.durationRatio();

  AuditReport ddff = auditDdff(inst, durationDescendingFirstFit(inst));
  EXPECT_TRUE(ddff.allHold()) << ddff.describe();

  AuditReport dc = auditDualColoring(inst, dualColoring(inst));
  EXPECT_TRUE(dc.allHold()) << dc.describe();

  double rho = std::sqrt(mu) * delta;
  ClassifyByDepartureFF cdt(rho);
  SimResult cdtRun = simulateOnline(inst, cdt);
  AuditReport cdtReport = auditClassifyByDeparture(inst, cdtRun.packing, rho);
  EXPECT_TRUE(cdtReport.allHold()) << cdtReport.describe();

  ClassifyByDurationFF cd(delta, 2.0);
  SimResult cdRun = simulateOnline(inst, cd);
  AuditReport cdReport = auditClassifyByDuration(inst, cdRun.packing, 2.0);
  EXPECT_TRUE(cdReport.allHold()) << cdReport.describe();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditSweep, ::testing::Range<std::uint64_t>(1, 13));

TEST(Audit, DualColoringReportIncludesLemmasWhenChartExists) {
  WorkloadSpec spec;
  spec.numItems = 40;
  spec.sizes = SizeDist::kSmallOnly;
  Instance inst = generateWorkload(spec, 3);
  AuditReport report = auditDualColoring(inst, dualColoring(inst));
  EXPECT_TRUE(report.allHold()) << report.describe();
  // 3 feasibility + 2 theorem + 4 lemma checks.
  EXPECT_EQ(report.checks.size(), 9u);
}

TEST(Audit, DualColoringWithoutSmallItemsSkipsLemmas) {
  Instance inst = InstanceBuilder().add(0.9, 0, 1).build();
  AuditReport report = auditDualColoring(inst, dualColoring(inst));
  EXPECT_TRUE(report.allHold()) << report.describe();
  EXPECT_EQ(report.checks.size(), 5u);
}

}  // namespace
}  // namespace cdbp
