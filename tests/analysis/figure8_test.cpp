#include "analysis/figure8.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/ratios.hpp"

namespace cdbp {
namespace {

TEST(Figure8, GridSpansOneToMuMax) {
  std::vector<double> grid = figure8MuGrid(100.0, 50);
  ASSERT_EQ(grid.size(), 50u);
  EXPECT_DOUBLE_EQ(grid.front(), 1.0);
  EXPECT_DOUBLE_EQ(grid.back(), 100.0);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(Figure8, RowsMatchClosedForms) {
  std::vector<Figure8Row> rows = figure8Series({1.0, 4.0, 16.0, 100.0});
  ASSERT_EQ(rows.size(), 4u);
  for (const Figure8Row& row : rows) {
    EXPECT_DOUBLE_EQ(row.firstFit, ratios::firstFitUpperBound(row.mu));
    EXPECT_DOUBLE_EQ(row.cdtBest, ratios::cdtBestRatio(row.mu));
    EXPECT_DOUBLE_EQ(row.cdBest, ratios::cdBestRatio(row.mu));
    EXPECT_DOUBLE_EQ(row.lowerBound, ratios::onlineLowerBound());
    EXPECT_EQ(row.cdBestN, ratios::optimalDurationCategories(row.mu));
  }
}

TEST(Figure8, ShapeMatchesPaperNarrative) {
  std::vector<Figure8Row> rows = figure8Series(figure8MuGrid(100.0, 100));
  // 1. Classification curves grow much slower than FF's linear mu + 4.
  const Figure8Row& last = rows.back();
  EXPECT_LT(last.cdtBest, last.firstFit);
  EXPECT_LT(last.cdBest, last.firstFit);
  EXPECT_LT(last.cdBest, 0.2 * last.firstFit);  // order-of-magnitude gap
  // 2. CDT below CD for mu < 4, above for mu > 4.
  for (const Figure8Row& row : rows) {
    if (row.mu < 3.5) {
      EXPECT_LE(row.cdtBest, row.cdBest + 1e-9) << row.mu;
    }
    if (row.mu > 4.5) {
      EXPECT_GE(row.cdtBest, row.cdBest - 1e-9) << row.mu;
    }
  }
  // 3. Everything stays above the Theorem 3 lower bound.
  for (const Figure8Row& row : rows) {
    EXPECT_GT(row.cdtBest, row.lowerBound);
    EXPECT_GT(row.cdBest, row.lowerBound);
  }
  // 4. All curves are non-decreasing in mu.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].firstFit, rows[i - 1].firstFit);
    EXPECT_GE(rows[i].cdtBest, rows[i - 1].cdtBest);
    EXPECT_GE(rows[i].cdBest + 1e-9, rows[i - 1].cdBest);
  }
}

TEST(Figure8, KnownAnchorValues) {
  // Hand-computed anchors for mu = 16: FF = 20, CDT = 2*4+3 = 11,
  // CD optimum at n = 3: 16^(1/3) + 3 + 3 ~= 8.52 (beats n=2 and n=4,
  // both 9).
  std::vector<Figure8Row> rows = figure8Series({16.0});
  EXPECT_DOUBLE_EQ(rows[0].firstFit, 20.0);
  EXPECT_DOUBLE_EQ(rows[0].cdtBest, 11.0);
  EXPECT_NEAR(rows[0].cdBest, std::cbrt(16.0) + 6.0, 1e-12);
  EXPECT_EQ(rows[0].cdBestN, 3u);
}

}  // namespace
}  // namespace cdbp
