#include "analysis/ratios.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cdbp::ratios {
namespace {

constexpr double kGolden = 1.6180339887498949;

TEST(Ratios, OnlineLowerBoundIsGoldenRatio) {
  EXPECT_NEAR(onlineLowerBound(), kGolden, 1e-12);
  EXPECT_NEAR(adversaryOptimalX(), kGolden, 1e-12);
}

TEST(Ratios, AdversaryGuaranteePeaksAtGoldenRatio) {
  // At x = phi both case ratios are equal to phi.
  EXPECT_NEAR(adversaryGuarantee(kGolden), kGolden, 1e-9);
  // Elsewhere the guarantee is strictly smaller.
  EXPECT_LT(adversaryGuarantee(1.2), kGolden);
  EXPECT_LT(adversaryGuarantee(2.5), kGolden);
  EXPECT_THROW(adversaryGuarantee(1.0), std::invalid_argument);
}

TEST(Ratios, PriorWorkCurves) {
  EXPECT_DOUBLE_EQ(firstFitUpperBound(1.0), 5.0);
  EXPECT_DOUBLE_EQ(firstFitUpperBound(16.0), 20.0);
  EXPECT_DOUBLE_EQ(anyFitLowerBound(10.0), 11.0);
  EXPECT_DOUBLE_EQ(nextFitUpperBound(10.0), 21.0);
  EXPECT_DOUBLE_EQ(hybridFirstFitUpperBound(10.0), 15.0);
}

TEST(Ratios, CdtRatioFormula) {
  // rho/Delta + mu*Delta/rho + 3 with rho=2, Delta=1, mu=16: 2 + 8 + 3.
  EXPECT_DOUBLE_EQ(cdtRatio(2.0, 1.0, 16.0), 13.0);
  EXPECT_THROW(cdtRatio(0, 1, 4), std::invalid_argument);
}

TEST(Ratios, CdtBestRatioIsMinimumOverRho) {
  for (double mu : {1.0, 4.0, 16.0, 100.0}) {
    double best = cdtBestRatio(mu);
    EXPECT_NEAR(best, 2.0 * std::sqrt(mu) + 3.0, 1e-12);
    // No rho does better.
    for (double rho = 0.25; rho <= 64.0; rho *= 1.3) {
      EXPECT_GE(cdtRatio(rho, 1.0, mu) + 1e-9, best) << "mu=" << mu;
    }
    // And the optimum rho = sqrt(mu)*Delta attains it.
    EXPECT_NEAR(cdtRatio(std::sqrt(mu), 1.0, mu), best, 1e-12);
  }
}

TEST(Ratios, CdRatioFormula) {
  // alpha + ceil(log_alpha mu) + 4, alpha=2, mu=16: 2 + 4 + 4.
  EXPECT_DOUBLE_EQ(cdRatio(2.0, 16.0), 10.0);
  // mu=1: no classification needed beyond one category.
  EXPECT_DOUBLE_EQ(cdRatio(2.0, 1.0), 6.0);
  EXPECT_THROW(cdRatio(1.0, 4.0), std::invalid_argument);
}

TEST(Ratios, CdRatioForCategories) {
  EXPECT_DOUBLE_EQ(cdRatioForCategories(16.0, 1), 16.0 + 1 + 3);
  EXPECT_DOUBLE_EQ(cdRatioForCategories(16.0, 2), 4.0 + 2 + 3);
  EXPECT_DOUBLE_EQ(cdRatioForCategories(16.0, 4), 2.0 + 4 + 3);
  EXPECT_THROW(cdRatioForCategories(16.0, 0), std::invalid_argument);
}

TEST(Ratios, OptimalCategoriesMinimizesExactly) {
  for (double mu : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 1e4}) {
    std::size_t n = optimalDurationCategories(mu);
    double best = cdRatioForCategories(mu, n);
    for (std::size_t k = 1; k <= 40; ++k) {
      EXPECT_LE(best, cdRatioForCategories(mu, k) + 1e-9) << "mu=" << mu;
    }
    EXPECT_NEAR(cdBestRatio(mu), best, 1e-12);
  }
}

TEST(Ratios, OptimalCategoriesForMuOneIsOne) {
  EXPECT_EQ(optimalDurationCategories(1.0), 1u);
  EXPECT_DOUBLE_EQ(cdBestRatio(1.0), 5.0);
}

TEST(Ratios, OurBoundBeatsBucketFirstFit) {
  // §5.3: alpha + ceil(log_alpha mu) + 4 << (2 alpha + 2) ceil(log_alpha mu).
  for (double mu : {8.0, 64.0, 1024.0}) {
    EXPECT_LT(cdRatio(2.0, mu), bucketFirstFitBound(2.0, mu));
  }
}

TEST(Ratios, ClassificationCrossoverNearFour) {
  // §5.4: CDT wins for mu < 4, CD wins for mu > 4.
  double cross = classificationCrossoverMu();
  EXPECT_NEAR(cross, 4.0, 0.5);
  EXPECT_LT(cdtBestRatio(2.0), cdBestRatio(2.0));
  EXPECT_GT(cdtBestRatio(16.0), cdBestRatio(16.0));
}

TEST(Ratios, RandomizationBeatsTheDeterministicLowerBound) {
  // Theorem 3 holds for deterministic algorithms only: a coin-flipped
  // first decision drives the oblivious adversary's value strictly below
  // the golden ratio.
  double best = randomizedAdversaryBest(kGolden);
  EXPECT_LT(best, kGolden - 1e-3);
  // Pure strategies recover the deterministic case ratios.
  EXPECT_NEAR(randomizedAdversaryValue(kGolden, 1.0),
              (2 * kGolden + 1) / (kGolden + 1), 1e-12);
  EXPECT_NEAR(randomizedAdversaryValue(kGolden, 0.0),
              (kGolden + 1) / kGolden, 1e-12);
  EXPECT_THROW(randomizedAdversaryValue(1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(randomizedAdversaryValue(2.0, 1.5), std::invalid_argument);
}

TEST(Ratios, RandomizedValueIsMaxOfTwoCases) {
  for (double p : {0.0, 0.3, 0.7, 1.0}) {
    double value = randomizedAdversaryValue(2.0, p);
    double caseA = (p * 2.0 + (1 - p) * 3.0) / 2.0;
    double caseB = (p * 5.0 + (1 - p) * 3.0) / 3.0;
    EXPECT_NEAR(value, std::max(caseA, caseB), 1e-12) << p;
  }
}

TEST(Ratios, ClassifiedCurvesBeatPlainFirstFitAsymptotically) {
  for (double mu : {25.0, 100.0, 400.0}) {
    EXPECT_LT(cdtBestRatio(mu), firstFitUpperBound(mu));
    EXPECT_LT(cdBestRatio(mu), firstFitUpperBound(mu));
  }
}

}  // namespace
}  // namespace cdbp::ratios
