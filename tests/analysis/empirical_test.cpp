#include "analysis/empirical.hpp"

#include <gtest/gtest.h>

#include "offline/ddff.hpp"
#include "online/any_fit.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(Empirical, EvaluatePolicyReportsRatioAboveOne) {
  WorkloadSpec spec;
  spec.numItems = 200;
  Instance inst = generateWorkload(spec, 1);
  FirstFitPolicy ff;
  EmpiricalResult result = evaluatePolicy(inst, ff);
  EXPECT_EQ(result.algorithm, "FirstFit");
  EXPECT_GT(result.lb3, 0.0);
  EXPECT_GE(result.ratio, 1.0 - 1e-9);
  EXPECT_NEAR(result.usage, result.ratio * result.lb3, 1e-6);
  EXPECT_GT(result.binsOpened, 0u);
}

TEST(Empirical, EvaluateOfflineMatchesDirectComputation) {
  WorkloadSpec spec;
  spec.numItems = 60;
  Instance inst = generateWorkload(spec, 2);
  EmpiricalResult result =
      evaluateOffline(inst, "DDFF", durationDescendingFirstFit);
  Packing direct = durationDescendingFirstFit(inst);
  EXPECT_EQ(result.algorithm, "DDFF");
  EXPECT_DOUBLE_EQ(result.usage, direct.totalUsage());
  EXPECT_EQ(result.binsOpened, direct.numBins());
}

TEST(Empirical, SweepAggregatesAcrossSeeds) {
  WorkloadSpec spec;
  spec.numItems = 100;
  std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5, 6};
  RatioSummary summary = sweepPolicy(
      seeds,
      [&](std::uint64_t seed) { return generateWorkload(spec, seed); },
      [] { return std::make_unique<FirstFitPolicy>(); });
  EXPECT_EQ(summary.algorithm, "FirstFit");
  EXPECT_EQ(summary.ratios.count(), seeds.size());
  EXPECT_GE(summary.ratios.min(), 1.0 - 1e-9);
}

TEST(Empirical, SweepIsDeterministicDespiteParallelism) {
  WorkloadSpec spec;
  spec.numItems = 80;
  std::vector<std::uint64_t> seeds = {10, 20, 30, 40};
  auto run = [&] {
    return sweepPolicy(
        seeds, [&](std::uint64_t seed) { return generateWorkload(spec, seed); },
        [] { return std::make_unique<FirstFitPolicy>(); });
  };
  RatioSummary a = run();
  RatioSummary b = run();
  ASSERT_EQ(a.ratios.count(), b.ratios.count());
  for (std::size_t i = 0; i < a.ratios.count(); ++i) {
    EXPECT_DOUBLE_EQ(a.ratios.samples()[i], b.ratios.samples()[i]);
  }
}

TEST(Empirical, EmptyInstanceRatioIsOne) {
  FirstFitPolicy ff;
  EmpiricalResult result = evaluatePolicy(Instance{}, ff);
  EXPECT_DOUBLE_EQ(result.ratio, 1.0);
  EXPECT_DOUBLE_EQ(result.usage, 0.0);
}

}  // namespace
}  // namespace cdbp
