#include "analysis/adversary.hpp"

#include <gtest/gtest.h>

#include "analysis/ratios.hpp"
#include "online/any_fit.hpp"
#include "online/classify_departure.hpp"
#include "online/classify_duration.hpp"
#include "online/combined.hpp"
#include "online/departure_fit.hpp"
#include "online/hybrid_ff.hpp"

namespace cdbp {
namespace {

constexpr double kGolden = 1.6180339887498949;

TEST(Adversary, FirstFitCoLocatesAndPaysCaseB) {
  FirstFitPolicy ff;
  AdversaryOutcome outcome = runTheorem3Adversary(ff, kGolden);
  EXPECT_TRUE(outcome.coLocated);
  // Case B: bin{1,2} runs x, items 3 and 4 get lone bins (x and 1):
  // ratio (2x+1)/(x+1+2tau) ~ phi.
  EXPECT_GE(outcome.ratio, outcome.guarantee - 0.01);
}

TEST(Adversary, SeparatingPolicyPaysCaseA) {
  // HybridFF puts the two (1/2-eps) items in the same size class, so it
  // co-locates; construct a policy that always separates instead.
  struct Separator : OnlinePolicy {
    std::string name() const override { return "Separator"; }
    bool clairvoyant() const override { return false; }
    PlacementDecision place(const PlacementView&, const Item&) override {
      return PlacementDecision::fresh(0);
    }
  } separator;
  AdversaryOutcome outcome = runTheorem3Adversary(separator, kGolden);
  EXPECT_FALSE(outcome.coLocated);
  // Case A: usage x + 1 vs optimum x: ratio (x+1)/x = phi at x = phi.
  EXPECT_NEAR(outcome.ratio, (kGolden + 1) / kGolden, 1e-9);
  EXPECT_GE(outcome.ratio, outcome.guarantee - 1e-9);
}

TEST(Adversary, EveryRosterPolicySuffersAtLeastTheGuarantee) {
  // Theorem 3 is universal: whatever the deterministic policy does, the
  // adaptive adversary extracts at least min{(x+1)/x, (2x+1)/(x+1)}.
  std::vector<PolicyPtr> roster;
  roster.push_back(std::make_unique<FirstFitPolicy>());
  roster.push_back(std::make_unique<BestFitPolicy>());
  roster.push_back(std::make_unique<WorstFitPolicy>());
  roster.push_back(std::make_unique<NextFitPolicy>());
  roster.push_back(std::make_unique<HybridFirstFitPolicy>());
  roster.push_back(std::make_unique<ClassifyByDepartureFF>(1.0));
  roster.push_back(std::make_unique<ClassifyByDurationFF>(0.5, 2.0));
  roster.push_back(std::make_unique<CombinedClassifyFF>(0.5, 2.0));
  roster.push_back(std::make_unique<MinExtensionPolicy>());
  roster.push_back(std::make_unique<DepartureAlignedBestFit>());
  for (const PolicyPtr& policy : roster) {
    AdversaryOutcome outcome = runTheorem3Adversary(*policy, kGolden);
    EXPECT_GE(outcome.ratio, outcome.guarantee - 0.02) << policy->name();
  }
}

TEST(Adversary, GuaranteeIsMaximalAtGoldenRatio) {
  FirstFitPolicy ff;
  double atPhi = runTheorem3Adversary(ff, kGolden).guarantee;
  for (double x : {1.2, 1.4, 1.9, 2.5}) {
    EXPECT_LE(runTheorem3Adversary(ff, x).guarantee, atPhi + 1e-12);
  }
  EXPECT_NEAR(atPhi, ratios::onlineLowerBound(), 1e-9);
}

TEST(Adversary, SmallTauApproachesTheBound) {
  FirstFitPolicy ff;
  AdversaryOutcome loose = runTheorem3Adversary(ff, kGolden, 1e-3, 0.05);
  AdversaryOutcome tight = runTheorem3Adversary(ff, kGolden, 1e-3, 1e-6);
  EXPECT_GT(tight.ratio, loose.ratio);
  EXPECT_NEAR(tight.ratio, kGolden, 1e-3);
}

}  // namespace
}  // namespace cdbp
