// Edge cases that cut across modules: negative/shifted time origins,
// boundary sizes, empty inputs, and single-item instances.
#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "offline/ddff.hpp"
#include "online/any_fit.hpp"
#include "offline/dual_coloring.hpp"
#include "online/classify_departure.hpp"
#include "online/classify_duration.hpp"
#include "online/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"
#include "workload/transforms.hpp"

namespace cdbp {
namespace {

TEST(EdgeCases, EmptyInstanceThroughEveryPipeline) {
  Instance empty;
  FirstFitPolicy ff;
  SimResult sim = simulateOnline(empty, ff);
  EXPECT_DOUBLE_EQ(sim.totalUsage, 0.0);
  EXPECT_EQ(sim.binsOpened, 0u);

  Packing ddff = durationDescendingFirstFit(empty);
  EXPECT_EQ(ddff.numBins(), 0u);
  DualColoringResult dc = dualColoring(empty);
  EXPECT_EQ(dc.packing.numBins(), 0u);
  EXPECT_DOUBLE_EQ(lowerBounds(empty).best(), 0.0);
}

TEST(EdgeCases, SingleItemEveryAlgorithmUsesOneBin) {
  Instance one = InstanceBuilder().add(0.37, 2.5, 7.25).build();
  for (const PolicyPtr& policy : fullRoster(one.minDuration(), 1.0)) {
    SimResult r = simulateOnline(one, *policy);
    EXPECT_EQ(r.binsOpened, 1u) << policy->name();
    EXPECT_DOUBLE_EQ(r.totalUsage, 4.75) << policy->name();
  }
  EXPECT_DOUBLE_EQ(durationDescendingFirstFit(one).totalUsage(), 4.75);
  EXPECT_DOUBLE_EQ(dualColoring(one).packing.totalUsage(), 4.75);
}

TEST(EdgeCases, NegativeTimeOriginsWorkEverywhere) {
  // Traces may start before t = 0 (e.g. epoch-relative logs).
  WorkloadSpec spec;
  spec.numItems = 80;
  Instance inst = shiftTime(generateWorkload(spec, 9), -1000.0);
  EXPECT_LT(inst.activeUnion().min(), 0.0);

  for (const PolicyPtr& policy :
       fullRoster(inst.minDuration(), inst.durationRatio())) {
    SimResult r = simulateOnline(inst, *policy);
    EXPECT_FALSE(r.packing.validate().has_value()) << policy->name();
  }
  EXPECT_FALSE(durationDescendingFirstFit(inst).validate().has_value());
  EXPECT_FALSE(dualColoring(inst).packing.validate().has_value());
}

TEST(EdgeCases, DepartureWindowsHandleNegativeTimes) {
  ClassifyByDepartureFF policy(2.0);
  EXPECT_EQ(policy.windowOf(-0.5), -1);
  EXPECT_EQ(policy.windowOf(-2.0), -2);  // (-4,-2] is window -2
  EXPECT_EQ(policy.windowOf(-3.9), -2);
}

TEST(EdgeCases, ExactHalfSizeIsSmallForDualColoring) {
  // Size exactly 1/2 goes to the small group (<= 1/2): two such items can
  // share a bin via the chart.
  Instance inst = InstanceBuilder().add(0.5, 0, 4).add(0.5, 0, 4).build();
  DualColoringResult dc = dualColoring(inst);
  EXPECT_TRUE(dc.chart != nullptr);
  EXPECT_EQ(dc.largeBins, 0u);
  EXPECT_FALSE(dc.packing.validate().has_value());
}

TEST(EdgeCases, JustAboveHalfIsLarge) {
  Instance inst = InstanceBuilder().add(0.500001, 0, 4).build();
  DualColoringResult dc = dualColoring(inst);
  EXPECT_EQ(dc.largeBins, 1u);
  EXPECT_FALSE(dc.chart);
}

TEST(EdgeCases, FullSizeItemsNeverShareConcurrently) {
  InstanceBuilder builder;
  for (int i = 0; i < 5; ++i) builder.add(1.0, i * 0.5, i * 0.5 + 1.0);
  Instance inst = builder.build();
  FirstFitPolicy ff;
  SimResult r = simulateOnline(inst, ff);
  EXPECT_FALSE(r.packing.validate().has_value());
  EXPECT_EQ(r.packing.maxConcurrentBins(), 2u);  // overlap structure
}

TEST(EdgeCases, IdenticalItemsMassArrival) {
  // 50 identical items at the same instant: First Fit fills bins to
  // capacity in order.
  InstanceBuilder builder;
  for (int i = 0; i < 50; ++i) builder.add(0.25, 0, 1);
  Instance inst = builder.build();
  FirstFitPolicy ff;
  SimResult r = simulateOnline(inst, ff);
  EXPECT_EQ(r.binsOpened, 13u);  // ceil(50/4)
  EXPECT_DOUBLE_EQ(r.totalUsage, 13.0);
  EXPECT_DOUBLE_EQ(lowerBounds(inst).ceilIntegral, 13.0);  // ceil(12.5)
}

TEST(EdgeCases, VeryLongAndVeryShortCoexist) {
  Instance inst = InstanceBuilder()
                      .add(0.3, 0, 1e6)       // very long
                      .add(0.3, 5e5, 5e5 + 1e-3)  // very short, nested
                      .build();
  EXPECT_GT(inst.durationRatio(), 1e8);
  auto cd = ClassifyByDurationFF::withKnownDurations(inst.minDuration(),
                                                     inst.durationRatio());
  SimResult r = simulateOnline(inst, cd);
  EXPECT_FALSE(r.packing.validate().has_value());
  EXPECT_EQ(r.binsOpened, 2u);  // different duration categories
}

}  // namespace
}  // namespace cdbp
