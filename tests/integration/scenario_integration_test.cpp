// Scenario-level integration: the domain workloads from the paper's
// motivation run end-to-end through online and offline pipelines, and the
// clairvoyant strategies deliver their promised savings.
#include <gtest/gtest.h>

#include "analysis/empirical.hpp"
#include "core/lower_bounds.hpp"
#include "offline/ddff.hpp"
#include "offline/dual_coloring.hpp"
#include "online/any_fit.hpp"
#include "online/classify_departure.hpp"
#include "online/classify_duration.hpp"
#include "sim/simulator.hpp"
#include "workload/scenarios.hpp"

namespace cdbp {
namespace {

TEST(CloudGamingIntegration, ClairvoyantStrategiesAreFeasibleAndReasonable) {
  CloudGamingSpec spec;
  spec.numSessions = 1500;
  Instance inst = cloudGamingSessions(spec, 2016);
  double delta = inst.minDuration();
  double mu = inst.durationRatio();

  FirstFitPolicy ff;
  auto cdt = ClassifyByDepartureFF::withKnownDurations(delta, mu);
  auto cd = ClassifyByDurationFF::withKnownDurations(delta, mu);

  EmpiricalResult ffRes = evaluatePolicy(inst, ff);
  EmpiricalResult cdtRes = evaluatePolicy(inst, cdt);
  EmpiricalResult cdRes = evaluatePolicy(inst, cd);

  // All feasible, all within a small constant of the lower bound on this
  // benign workload.
  EXPECT_LT(ffRes.ratio, 3.0);
  EXPECT_LT(cdtRes.ratio, 3.0);
  EXPECT_LT(cdRes.ratio, 3.0);
}

TEST(BatchAnalyticsIntegration, OfflinePlannersBeatTheTrivialPacking) {
  BatchAnalyticsSpec spec;
  spec.numTemplates = 30;
  spec.numPeriods = 12;
  Instance inst = batchAnalyticsJobs(spec, 7);

  double trivial = 0;  // one bin per item
  for (const Item& r : inst.items()) trivial += r.duration();

  Packing ddff = durationDescendingFirstFit(inst);
  DualColoringResult dc = dualColoring(inst);
  EXPECT_LT(ddff.totalUsage(), trivial);
  EXPECT_LT(dc.packing.totalUsage(), trivial);
  EXPECT_GE(ddff.totalUsage() + 1e-6, lowerBounds(inst).ceilIntegral);
}

TEST(ScenarioIntegration, OnlineNeverBeatsTheRepackingAdversaryBound) {
  CloudGamingSpec spec;
  spec.numSessions = 300;
  Instance inst = cloudGamingSessions(spec, 5);
  double lb3 = lowerBounds(inst).ceilIntegral;
  FirstFitPolicy ff;
  SimResult r = simulateOnline(inst, ff);
  EXPECT_GE(r.totalUsage + 1e-6, lb3);
}

TEST(ScenarioIntegration, DepartureClassificationHelpsGamingWorkload) {
  // Game sessions have wide duration spread; grouping by departure window
  // should not lose to plain FF by more than a whisker and typically wins.
  CloudGamingSpec spec;
  spec.numSessions = 2500;
  Instance inst = cloudGamingSessions(spec, 99);
  FirstFitPolicy ff;
  auto cdt = ClassifyByDepartureFF::withKnownDurations(inst.minDuration(),
                                                       inst.durationRatio());
  double ffUsage = simulateOnline(inst, ff).totalUsage;
  double cdtUsage = simulateOnline(inst, cdt).totalUsage;
  EXPECT_LT(cdtUsage, 1.5 * ffUsage);
}

}  // namespace
}  // namespace cdbp
