// Differential pin of the bounded-memory streaming simulator: for every
// registered policy spec, both placement engines, and workloads from all
// three sources (random generator, adversarial construction, trace-file
// round trip), simulateStream must be BIT-IDENTICAL to simulateOnline —
// same bin for every item, same totalUsage double, same sim.fit_checks
// count. The stream replays the batch timeline's exact event order
// (DESIGN.md §11), so this is an equality test, not an approximation test.
//
// Batch instances are canonicalized via Instance(inst.sortedByArrival())
// first: the stream assigns dense ids in yield order, and the equivalence
// contract is stated for arrival-ordered, densely numbered inputs.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "online/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "sim/streaming.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/adversarial.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace cdbp {
namespace {

const std::vector<std::string>& allSpecs() {
  static const std::vector<std::string> specs = {
      "ff",     "bf",    "wf",          "nf",      "rf(seed=7)",
      "hybrid-ff", "cdt-ff", "cd-ff",   "combined-ff", "min-ext",
      "dep-bf"};
  return specs;
}

std::uint64_t fitChecks() {
  return telemetry::Registry::global().counter("sim.fit_checks").value();
}

struct BatchRun {
  SimResult sim;
  std::uint64_t fitChecks = 0;
};

BatchRun runBatch(const Instance& inst, const std::string& spec,
                  const PolicyContext& context, PlacementEngine engine) {
  PolicyPtr policy = makePolicy(spec, context);
  SimOptions options;
  options.engine = engine;
  BatchRun run;
  std::uint64_t before = fitChecks();
  run.sim = simulateOnline(inst, *policy, options);
  run.fitChecks = fitChecks() - before;
  return run;
}

struct StreamRun {
  StreamResult result;
  std::vector<BinId> bins;  // bins[i] = bin of stream item i
  std::uint64_t fitChecks = 0;
};

StreamRun runStream(ArrivalSource& source, const std::string& spec,
                    const PolicyContext& context, PlacementEngine engine) {
  PolicyPtr policy = makePolicy(spec, context);
  StreamOptions options;
  options.engine = engine;
  options.computeLowerBound = false;  // covered by sim/streaming_test
  StreamRun run;
  options.onPlacement = [&run](ItemId /*id*/, BinId bin, bool /*newBin*/,
                               int /*category*/) { run.bins.push_back(bin); };
  std::uint64_t before = fitChecks();
  run.result = simulateStream(source, *policy, options);
  run.fitChecks = fitChecks() - before;
  return run;
}

void expectEqualRuns(const BatchRun& batch, const StreamRun& stream,
                     const Instance& canonical) {
  // Exact equality on every aggregate: the stream must take the same
  // decisions, not merely equally good ones.
  EXPECT_EQ(stream.result.items, canonical.size());
  EXPECT_EQ(stream.result.totalUsage, batch.sim.totalUsage);
  EXPECT_EQ(stream.result.binsOpened, batch.sim.binsOpened);
  EXPECT_EQ(stream.result.maxOpenBins, batch.sim.maxOpenBins);
  EXPECT_EQ(stream.result.categoriesUsed, batch.sim.categoriesUsed);
  ASSERT_EQ(stream.bins.size(), canonical.size());
  for (std::size_t i = 0; i < stream.bins.size(); ++i) {
    ASSERT_EQ(stream.bins[i], batch.sim.packing.binOf(static_cast<ItemId>(i)))
        << "item " << i;
  }
  if (telemetry::kEnabled) {
    // Same placement queries against the same bin states: the policies'
    // counted fit checks agree exactly.
    EXPECT_EQ(stream.fitChecks, batch.fitChecks);
  }
}

/// Runs every spec x both engines over `inst`, through all three stream
/// sources for trace-capable instances: the in-memory adapter plus a CSV
/// and a JSONL round trip.
void expectStreamEquivalence(const Instance& inst, const std::string& label,
                             bool includeTraceFiles) {
  // Canonicalize: dense ids in (arrival, id) order, so batch item ids
  // coincide with the stream's yield-order numbering.
  Instance canonical(inst.sortedByArrival());
  PolicyContext context = PolicyContext::forInstance(canonical);

  for (PlacementEngine engine :
       {PlacementEngine::kIndexed, PlacementEngine::kLinearScan}) {
    const char* engineName =
        engine == PlacementEngine::kIndexed ? "indexed" : "linear";
    for (const std::string& spec : allSpecs()) {
      SCOPED_TRACE(label + " / " + spec + " / " + engineName);
      BatchRun batch = runBatch(canonical, spec, context, engine);

      InstanceArrivalSource memorySource(canonical);
      StreamRun fromMemory = runStream(memorySource, spec, context, engine);
      expectEqualRuns(batch, fromMemory, canonical);

      if (!includeTraceFiles) continue;
      for (TraceFormat format : {TraceFormat::kCsv, TraceFormat::kJsonl}) {
        std::stringstream buffer;
        writeTrace(canonical, buffer, format);
        TraceArrivalSource fileSource(buffer, format,
                                      traceFormatName(format));
        StreamRun fromFile = runStream(fileSource, spec, context, engine);
        SCOPED_TRACE("via " + traceFormatName(format));
        expectEqualRuns(batch, fromFile, canonical);
      }
    }
  }
}

TEST(StreamingDifferential, AllPoliciesOnRandomWorkloads) {
  for (double mu : {1.0, 8.0, 64.0}) {
    for (std::uint64_t seed : {1u, 2u}) {
      WorkloadSpec spec;
      spec.numItems = 120;
      spec.mu = mu;
      Instance inst = generateWorkload(spec, seed);
      // Trace-file sources on one cell per mu keeps the suite fast while
      // still crossing every (spec, engine) with every source kind.
      expectStreamEquivalence(inst,
                              "mu=" + std::to_string(mu) +
                                  " seed=" + std::to_string(seed),
                              seed == 1u);
    }
  }
}

TEST(StreamingDifferential, ManyOpenBinsStress) {
  // Large live sets: the departure heap actually interleaves with
  // arrivals instead of draining one by one.
  WorkloadSpec spec;
  spec.numItems = 400;
  spec.mu = 16.0;
  spec.arrivalRate = 64.0;
  Instance inst = generateWorkload(spec, 13);
  expectStreamEquivalence(inst, "many-open", false);
}

TEST(StreamingDifferential, AdversarialSliverTrap) {
  // Deterministic fragmentation construction with exact-epsilon levels and
  // simultaneous departures — the case that breaks any drain order other
  // than the batch timeline's (time, id) key.
  Instance inst = firstFitSliverTrap(12, 8.0);
  expectStreamEquivalence(inst, "sliver-trap", true);
}

TEST(StreamingDifferential, SimultaneousEventsPinDrainOrder) {
  // Hand-built collisions: several items share one departure instant, and
  // one item arrives exactly when others depart (half-open intervals: the
  // departing capacity must be free for the arrival).
  Instance inst = InstanceBuilder()
                      .add(0.5, 0.0, 4.0)
                      .add(0.3, 0.0, 4.0)
                      .add(0.2, 1.0, 4.0)
                      .add(0.9, 4.0, 6.0)   // arrives as all three depart
                      .add(0.6, 4.0, 5.0)
                      .add(0.4, 4.5, 6.0)
                      .build();
  expectStreamEquivalence(inst, "simultaneous-events", true);
}

TEST(StreamingDifferential, TraceFileRoundTripPreservesEquivalence) {
  // The full pipeline an exported workload travels: generator ->
  // writeTrace -> TraceArrivalSource -> simulateStream, against batch on
  // the in-memory original. Small-size workload packs dozens of items per
  // bin, stressing long equal-level runs through the file path too.
  WorkloadSpec spec;
  spec.numItems = 300;
  spec.sizes = SizeDist::kSmallOnly;
  spec.minSize = 0.02;
  spec.arrivalRate = 24.0;
  spec.mu = 8.0;
  Instance inst = generateWorkload(spec, 5);
  expectStreamEquivalence(inst, "small-sizes", true);
}

}  // namespace
}  // namespace cdbp
