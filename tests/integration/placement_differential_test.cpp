// Differential pin of the sublinear placement engine: every policy spec,
// run over randomized workloads with the capacity-indexed engine and with
// the retained linear-scan reference, must produce bit-identical packings.
// The indexed queries use the same fitsCapacity predicate on the same
// doubles as the linear loops (DESIGN.md §9.1), so this is an equality
// test, not an approximation test.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "flexible/flexible_workload.hpp"
#include "flexible/online_flexible.hpp"
#include "multidim/md_policies.hpp"
#include "multidim/md_workload.hpp"
#include "online/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "workload/adversarial.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

const std::vector<std::string>& allSpecs() {
  static const std::vector<std::string> specs = {
      "ff",     "bf",    "wf",          "nf",      "rf(seed=7)",
      "hybrid-ff", "cdt-ff", "cd-ff",   "combined-ff", "min-ext",
      "dep-bf"};
  return specs;
}

SimResult runWith(const Instance& inst, const std::string& spec,
                  PlacementEngine engine) {
  PolicyPtr policy = makePolicy(spec, PolicyContext::forInstance(inst));
  SimOptions options;
  options.engine = engine;
  return simulateOnline(inst, *policy, options);
}

void expectIdentical(const Instance& inst, const std::string& spec,
                     const std::string& label) {
  SimResult indexed = runWith(inst, spec, PlacementEngine::kIndexed);
  SimResult linear = runWith(inst, spec, PlacementEngine::kLinearScan);
  SCOPED_TRACE(label + " / " + spec);
  // Exact equality: the two engines must take the same decisions, not
  // merely equally good ones.
  EXPECT_EQ(indexed.totalUsage, linear.totalUsage);
  EXPECT_EQ(indexed.binsOpened, linear.binsOpened);
  EXPECT_EQ(indexed.maxOpenBins, linear.maxOpenBins);
  EXPECT_EQ(indexed.categoriesUsed, linear.categoriesUsed);
  for (const Item& r : inst.items()) {
    ASSERT_EQ(indexed.packing.binOf(r.id), linear.packing.binOf(r.id))
        << "item " << r.id;
  }
}

TEST(PlacementDifferential, AllPoliciesOnRandomWorkloads) {
  for (double mu : {1.0, 8.0, 64.0}) {
    for (std::uint64_t seed : {1u, 2u}) {
      WorkloadSpec spec;
      spec.numItems = 120;
      spec.mu = mu;
      Instance inst = generateWorkload(spec, seed);
      for (const std::string& policySpec : allSpecs()) {
        expectIdentical(inst, policySpec,
                        "mu=" + std::to_string(mu) +
                            " seed=" + std::to_string(seed));
      }
    }
  }
}

TEST(PlacementDifferential, ManyOpenBinsStress) {
  // High arrival rate keeps a large open set alive — the regime the index
  // exists for, and the one where a descent bug would actually bite.
  WorkloadSpec spec;
  spec.numItems = 400;
  spec.mu = 16.0;
  spec.arrivalRate = 64.0;
  Instance inst = generateWorkload(spec, 13);
  for (const std::string& policySpec : allSpecs()) {
    expectIdentical(inst, policySpec, "many-open");
  }
}

TEST(PlacementDifferential, SmallSizesPackManyPerBin) {
  // Dozens of items per bin exercise long equal-level runs in the Best Fit
  // set and deep tournament descents.
  WorkloadSpec spec;
  spec.numItems = 300;
  spec.sizes = SizeDist::kSmallOnly;
  spec.minSize = 0.02;
  spec.arrivalRate = 24.0;
  spec.mu = 8.0;
  Instance inst = generateWorkload(spec, 5);
  for (const std::string& policySpec : allSpecs()) {
    expectIdentical(inst, policySpec, "small-sizes");
  }
}

TEST(PlacementDifferential, AdversarialSliverTrap) {
  // The deterministic fragmentation construction: exact half-capacity
  // levels and sliver items sit right on the epsilon boundary.
  Instance inst = firstFitSliverTrap(12, 8.0);
  for (const std::string& policySpec : allSpecs()) {
    expectIdentical(inst, policySpec, "sliver-trap");
  }
}

// --- Multidim suites: the generic substrate's vector instantiation must
// agree engine for engine too. The vector tournament descent is only a
// sound prune (it backtracks), so these suites are what certify that it
// still lands on the leftmost genuinely fitting bin.

struct MdPolicyConfig {
  std::string label;
  MdClassifyPolicy::Config config;
};

const std::vector<MdPolicyConfig>& allMdConfigs() {
  static const std::vector<MdPolicyConfig> configs = {
      {"md-ff", {MdFitRule::kFirstFit, MdCategoryRule::kNone, 1, 1, 2}},
      {"md-df", {MdFitRule::kDominantFit, MdCategoryRule::kNone, 1, 1, 2}},
      {"md-cdt-ff", {MdFitRule::kFirstFit, MdCategoryRule::kDeparture, 6, 1, 2}},
      {"md-cdt-df",
       {MdFitRule::kDominantFit, MdCategoryRule::kDeparture, 6, 1, 2}},
      {"md-cd-ff", {MdFitRule::kFirstFit, MdCategoryRule::kDuration, 1, 1, 2}},
      {"md-cd-df",
       {MdFitRule::kDominantFit, MdCategoryRule::kDuration, 1, 1, 2}},
  };
  return configs;
}

MdSimResult runMdWith(const MdInstance& inst,
                      const MdClassifyPolicy::Config& config,
                      PlacementEngine engine) {
  MdClassifyPolicy policy(config);
  MdSimOptions options;
  options.engine = engine;
  return mdSimulateOnline(inst, policy, options);
}

void expectMdIdentical(const MdInstance& inst, const MdPolicyConfig& config,
                       const std::string& label) {
  MdSimResult indexed = runMdWith(inst, config.config, PlacementEngine::kIndexed);
  MdSimResult linear =
      runMdWith(inst, config.config, PlacementEngine::kLinearScan);
  SCOPED_TRACE(label + " / " + config.label);
  EXPECT_EQ(indexed.totalUsage, linear.totalUsage);
  EXPECT_EQ(indexed.binsOpened, linear.binsOpened);
  EXPECT_EQ(indexed.maxOpenBins, linear.maxOpenBins);
  for (const MdItem& r : inst.items()) {
    ASSERT_EQ(indexed.packing.binOf(r.id), linear.packing.binOf(r.id))
        << "item " << r.id;
  }
}

TEST(PlacementDifferential, MultidimAllConfigsOnRandomWorkloads) {
  for (std::size_t dims : {2u, 3u}) {
    for (double correlation : {0.0, 1.0}) {
      MdWorkloadSpec spec;
      spec.numItems = 150;
      spec.dims = dims;
      spec.correlation = correlation;
      MdInstance inst = generateMdWorkload(spec, 31 + dims);
      for (const MdPolicyConfig& config : allMdConfigs()) {
        expectMdIdentical(inst, config,
                          "dims=" + std::to_string(dims) +
                              " corr=" + std::to_string(correlation));
      }
    }
  }
}

TEST(PlacementDifferential, MultidimManyOpenBinsStress) {
  // Large open set + low correlation: the regime where the vector
  // descent's sound-prune backtracking actually runs, and where a
  // leftmost-selection bug would surface.
  MdWorkloadSpec spec;
  spec.numItems = 400;
  spec.dims = 3;
  spec.arrivalRate = 64.0;
  spec.mu = 16.0;
  spec.correlation = 0.0;
  MdInstance inst = generateMdWorkload(spec, 47);
  for (const MdPolicyConfig& config : allMdConfigs()) {
    expectMdIdentical(inst, config, "md-many-open");
  }
}

TEST(PlacementDifferential, MultidimAdversarialAlternatingDominant) {
  // Lift the scalar sliver trap to 2 dims with the dominant coordinate
  // alternating per item: per-dimension levels sit on the epsilon boundary
  // in different dimensions of different bins, the worst case for a
  // componentwise-min prune.
  Instance trap = firstFitSliverTrap(12, 8.0);
  MdInstanceBuilder builder;
  for (const Item& r : trap.items()) {
    double minor = std::min(0.05, r.size);
    if (r.id % 2 == 0) {
      builder.add(Resources({r.size, minor}), r.arrival(), r.departure());
    } else {
      builder.add(Resources({minor, r.size}), r.arrival(), r.departure());
    }
  }
  MdInstance inst = builder.build();
  for (const MdPolicyConfig& config : allMdConfigs()) {
    expectMdIdentical(inst, config, "md-sliver-trap");
  }
}

// --- Flexible suites: the event-driven flexible scheduler's First Fit
// queries route through the same view; starts, forced starts and the final
// packing must be bit-identical across engines.

void expectFlexIdentical(const FlexibleInstance& inst, FlexOnlinePolicy& policy,
                         const std::string& label) {
  FlexSimOptions indexedOptions;
  indexedOptions.engine = PlacementEngine::kIndexed;
  FlexOnlineResult indexed = simulateFlexibleOnline(inst, policy, indexedOptions);
  FlexSimOptions linearOptions;
  linearOptions.engine = PlacementEngine::kLinearScan;
  FlexOnlineResult linear = simulateFlexibleOnline(inst, policy, linearOptions);
  SCOPED_TRACE(label + " / " + policy.name());
  EXPECT_EQ(indexed.totalUsage, linear.totalUsage);
  EXPECT_EQ(indexed.binsOpened, linear.binsOpened);
  EXPECT_EQ(indexed.forcedStarts, linear.forcedStarts);
  ASSERT_EQ(indexed.starts.size(), linear.starts.size());
  for (const FlexibleJob& j : inst.jobs()) {
    EXPECT_EQ(indexed.starts[j.id], linear.starts[j.id]) << "job " << j.id;
    ASSERT_EQ(indexed.packing.binOf(j.id), linear.packing.binOf(j.id))
        << "job " << j.id;
  }
}

TEST(PlacementDifferential, FlexiblePoliciesOnRandomWorkloads) {
  for (double slack : {0.5, 3.0}) {
    for (std::uint64_t seed : {3u, 9u}) {
      FlexibleWorkloadSpec spec;
      spec.numJobs = 150;
      spec.slackFactor = slack;
      FlexibleInstance inst = generateFlexibleWorkload(spec, seed);
      std::string label =
          "slack=" + std::to_string(slack) + " seed=" + std::to_string(seed);
      FlexStartAsapFF asap;
      expectFlexIdentical(inst, asap, label);
      FlexDeferAlign align;
      expectFlexIdentical(inst, align, label);
    }
  }
}

TEST(PlacementDifferential, FlexibleAdversarialZeroSlackSliverTrap) {
  // Zero slack forces every start at release: the scheduler degenerates to
  // scalar First Fit over the sliver trap, with every placement on the
  // forced path — the fresh-bin fallback and forced First Fit must agree
  // across engines too.
  Instance trap = firstFitSliverTrap(10, 6.0);
  FlexibleInstanceBuilder builder;
  for (const Item& r : trap.items()) {
    builder.add(r.size, r.arrival(), r.departure(), r.duration());
  }
  FlexibleInstance inst = builder.build();
  FlexStartAsapFF asap;
  expectFlexIdentical(inst, asap, "flex-sliver-trap");
  FlexDeferAlign align;
  expectFlexIdentical(inst, align, "flex-sliver-trap");
}

TEST(PlacementDifferential, RandomizedPropertySweep) {
  // Broad randomized property: many small instances across the generator's
  // parameter space, three representative query shapes (leftmost, fullest,
  // emptiest) plus the category-scoped classify policy.
  const std::vector<std::string> fast = {"ff", "bf", "wf", "cdt-ff"};
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    WorkloadSpec spec;
    spec.numItems = 60 + (seed % 5) * 30;
    spec.mu = 1.0 + static_cast<double>(seed % 7) * 9.0;
    spec.arrivalRate = 2.0 + static_cast<double>(seed % 4) * 16.0;
    Instance inst = generateWorkload(spec, seed);
    for (const std::string& policySpec : fast) {
      expectIdentical(inst, policySpec, "sweep seed=" + std::to_string(seed));
    }
  }
}

}  // namespace
}  // namespace cdbp
