// Differential pin of the sublinear placement engine: every policy spec,
// run over randomized workloads with the capacity-indexed engine and with
// the retained linear-scan reference, must produce bit-identical packings.
// The indexed queries use the same fitsCapacity predicate on the same
// doubles as the linear loops (DESIGN.md §9.1), so this is an equality
// test, not an approximation test.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "online/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "workload/adversarial.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

const std::vector<std::string>& allSpecs() {
  static const std::vector<std::string> specs = {
      "ff",     "bf",    "wf",          "nf",      "rf(seed=7)",
      "hybrid-ff", "cdt-ff", "cd-ff",   "combined-ff", "min-ext",
      "dep-bf"};
  return specs;
}

SimResult runWith(const Instance& inst, const std::string& spec,
                  PlacementEngine engine) {
  PolicyPtr policy = makePolicy(spec, PolicyContext::forInstance(inst));
  SimOptions options;
  options.engine = engine;
  return simulateOnline(inst, *policy, options);
}

void expectIdentical(const Instance& inst, const std::string& spec,
                     const std::string& label) {
  SimResult indexed = runWith(inst, spec, PlacementEngine::kIndexed);
  SimResult linear = runWith(inst, spec, PlacementEngine::kLinearScan);
  SCOPED_TRACE(label + " / " + spec);
  // Exact equality: the two engines must take the same decisions, not
  // merely equally good ones.
  EXPECT_EQ(indexed.totalUsage, linear.totalUsage);
  EXPECT_EQ(indexed.binsOpened, linear.binsOpened);
  EXPECT_EQ(indexed.maxOpenBins, linear.maxOpenBins);
  EXPECT_EQ(indexed.categoriesUsed, linear.categoriesUsed);
  for (const Item& r : inst.items()) {
    ASSERT_EQ(indexed.packing.binOf(r.id), linear.packing.binOf(r.id))
        << "item " << r.id;
  }
}

TEST(PlacementDifferential, AllPoliciesOnRandomWorkloads) {
  for (double mu : {1.0, 8.0, 64.0}) {
    for (std::uint64_t seed : {1u, 2u}) {
      WorkloadSpec spec;
      spec.numItems = 120;
      spec.mu = mu;
      Instance inst = generateWorkload(spec, seed);
      for (const std::string& policySpec : allSpecs()) {
        expectIdentical(inst, policySpec,
                        "mu=" + std::to_string(mu) +
                            " seed=" + std::to_string(seed));
      }
    }
  }
}

TEST(PlacementDifferential, ManyOpenBinsStress) {
  // High arrival rate keeps a large open set alive — the regime the index
  // exists for, and the one where a descent bug would actually bite.
  WorkloadSpec spec;
  spec.numItems = 400;
  spec.mu = 16.0;
  spec.arrivalRate = 64.0;
  Instance inst = generateWorkload(spec, 13);
  for (const std::string& policySpec : allSpecs()) {
    expectIdentical(inst, policySpec, "many-open");
  }
}

TEST(PlacementDifferential, SmallSizesPackManyPerBin) {
  // Dozens of items per bin exercise long equal-level runs in the Best Fit
  // set and deep tournament descents.
  WorkloadSpec spec;
  spec.numItems = 300;
  spec.sizes = SizeDist::kSmallOnly;
  spec.minSize = 0.02;
  spec.arrivalRate = 24.0;
  spec.mu = 8.0;
  Instance inst = generateWorkload(spec, 5);
  for (const std::string& policySpec : allSpecs()) {
    expectIdentical(inst, policySpec, "small-sizes");
  }
}

TEST(PlacementDifferential, AdversarialSliverTrap) {
  // The deterministic fragmentation construction: exact half-capacity
  // levels and sliver items sit right on the epsilon boundary.
  Instance inst = firstFitSliverTrap(12, 8.0);
  for (const std::string& policySpec : allSpecs()) {
    expectIdentical(inst, policySpec, "sliver-trap");
  }
}

TEST(PlacementDifferential, RandomizedPropertySweep) {
  // Broad randomized property: many small instances across the generator's
  // parameter space, three representative query shapes (leftmost, fullest,
  // emptiest) plus the category-scoped classify policy.
  const std::vector<std::string> fast = {"ff", "bf", "wf", "cdt-ff"};
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    WorkloadSpec spec;
    spec.numItems = 60 + (seed % 5) * 30;
    spec.mu = 1.0 + static_cast<double>(seed % 7) * 9.0;
    spec.arrivalRate = 2.0 + static_cast<double>(seed % 4) * 16.0;
    Instance inst = generateWorkload(spec, seed);
    for (const std::string& policySpec : fast) {
      expectIdentical(inst, policySpec, "sweep seed=" + std::to_string(seed));
    }
  }
}

}  // namespace
}  // namespace cdbp
