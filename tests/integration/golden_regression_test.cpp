// Golden regression pins: exact outputs of every algorithm on one fixed
// seeded workload. These values were produced by the current
// implementation and verified against the invariants elsewhere in the
// suite; the tests exist to catch unintended behavior changes (a failed
// golden test with green property tests means "behavior changed, decide
// deliberately and re-pin").
#include <gtest/gtest.h>

#include <map>

#include "offline/ddff.hpp"
#include "offline/dual_coloring.hpp"
#include "online/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

Instance goldenInstance() {
  WorkloadSpec spec;
  spec.numItems = 200;
  spec.mu = 8.0;
  spec.arrivalRate = 4.0;
  return generateWorkload(spec, 20160711);
}

TEST(Golden, WorkloadIsPinned) {
  Instance inst = goldenInstance();
  ASSERT_EQ(inst.size(), 200u);
  // Pin a few instance statistics to guard the generator + RNG stack.
  EXPECT_NEAR(inst.demand(), 488.9844908, 1e-6);
  EXPECT_NEAR(inst.span(), 59.1667270, 1e-6);
  EXPECT_NEAR(inst.durationRatio(), 7.5905553, 1e-6);
}

struct GoldenCase {
  const char* policy;
  double usage;
  std::size_t bins;
};

TEST(Golden, OnlineRosterUsagesArePinned) {
  Instance inst = goldenInstance();
  std::vector<PolicyPtr> roster =
      fullRoster(inst.minDuration(), inst.durationRatio());
  // Regenerate with: for each policy print name, usage, binsOpened.
  std::map<std::string, std::pair<double, std::size_t>> expected = {
      {"FirstFit", {616.9526957, 94}},
      {"BestFit", {611.9895026, 86}},
      {"WorstFit", {644.6368635, 99}},
      {"NextFit", {712.2920883, 142}},
      {"HybridFF", {719.2759720, 121}},
      {"RandomFit", {616.8365133, 84}},
  };
  for (const PolicyPtr& policy : roster) {
    auto it = expected.find(policy->name());
    if (it == expected.end()) continue;  // parameterized names not pinned
    SimResult r = simulateOnline(inst, *policy);
    EXPECT_NEAR(r.totalUsage, it->second.first, 1e-5) << policy->name();
    EXPECT_EQ(r.binsOpened, it->second.second) << policy->name();
  }
}

TEST(Golden, OfflineAlgorithmsArePinned) {
  Instance inst = goldenInstance();
  Packing ddff = durationDescendingFirstFit(inst);
  EXPECT_NEAR(ddff.totalUsage(), 624.9687329, 1e-5);
  DualColoringResult dc = dualColoring(inst);
  EXPECT_NEAR(dc.packing.totalUsage(), 795.6055229, 1e-5);
}

}  // namespace
}  // namespace cdbp
