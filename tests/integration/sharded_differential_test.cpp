// Differential pin of the epoch-sharded engine: for every registered
// policy spec, every tested worker count, and workloads from all three
// sources (random generator, adversarial construction, trace-file round
// trip), kSharded must be BIT-IDENTICAL to kIndexed and kLinearScan —
// same bin for every item, same totalUsage double, same aggregate
// statistics, and the same sim.fit_checks delta as the indexed engine
// (shard-local indexed managers answer exactly the queries the single
// pool would). DESIGN.md §14 states the argument; this battery enforces
// it, including across epoch boundaries (small epochArrivals force the
// pipeline to hand over mid-run) and in the single-shard fallback the
// non-partitionable policies take.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "online/policy_factory.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "sim/streaming.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/adversarial.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace cdbp {
namespace {

const std::vector<std::string>& allSpecs() {
  static const std::vector<std::string> specs = {
      "ff",     "bf",    "wf",          "nf",      "rf(seed=7)",
      "hybrid-ff", "cdt-ff", "cd-ff",   "combined-ff", "min-ext",
      "dep-bf"};
  return specs;
}

const std::vector<std::size_t>& workerCounts() {
  static const std::vector<std::size_t> counts = {1, 2, 4};
  return counts;
}

std::uint64_t fitChecks() {
  return telemetry::Registry::global().counter("sim.fit_checks").value();
}

struct BatchRun {
  SimResult sim;
  std::uint64_t fitChecks = 0;
};

BatchRun runBatch(const Instance& inst, const std::string& spec,
                  const PolicyContext& context, PlacementEngine engine,
                  std::size_t shardedThreads = 0) {
  PolicyPtr policy = makePolicy(spec, context);
  SimOptions options;
  options.engine = engine;
  options.shardedThreads = shardedThreads;
  BatchRun run;
  std::uint64_t before = fitChecks();
  run.sim = simulateOnline(inst, *policy, options);
  run.fitChecks = fitChecks() - before;
  return run;
}

void expectSameSim(const BatchRun& oracle, const BatchRun& sharded,
                   const Instance& canonical, bool compareFitChecks) {
  EXPECT_EQ(sharded.sim.totalUsage, oracle.sim.totalUsage);
  EXPECT_EQ(sharded.sim.binsOpened, oracle.sim.binsOpened);
  EXPECT_EQ(sharded.sim.maxOpenBins, oracle.sim.maxOpenBins);
  EXPECT_EQ(sharded.sim.categoriesUsed, oracle.sim.categoriesUsed);
  for (std::size_t i = 0; i < canonical.size(); ++i) {
    ASSERT_EQ(sharded.sim.packing.binOf(static_cast<ItemId>(i)),
              oracle.sim.packing.binOf(static_cast<ItemId>(i)))
        << "item " << i;
  }
  if (telemetry::kEnabled && compareFitChecks) {
    // Shard-local indexed managers field exactly the queries the single
    // indexed pool would — the counted probes agree exactly. (The linear
    // oracle counts per scan step, so only the indexed oracle compares.)
    EXPECT_EQ(sharded.fitChecks, oracle.fitChecks);
  }
}

/// Every spec x every worker count over `inst`, against both oracles.
void expectShardedEquivalence(const Instance& inst, const std::string& label) {
  Instance canonical(inst.sortedByArrival());
  PolicyContext context = PolicyContext::forInstance(canonical);

  for (const std::string& spec : allSpecs()) {
    BatchRun indexed =
        runBatch(canonical, spec, context, PlacementEngine::kIndexed);
    BatchRun linear =
        runBatch(canonical, spec, context, PlacementEngine::kLinearScan);
    for (std::size_t threads : workerCounts()) {
      SCOPED_TRACE(label + " / " + spec + " / t" + std::to_string(threads));
      BatchRun sharded = runBatch(canonical, spec, context,
                                  PlacementEngine::kSharded, threads);
      expectSameSim(indexed, sharded, canonical, /*compareFitChecks=*/true);
      expectSameSim(linear, sharded, canonical, /*compareFitChecks=*/false);
    }
  }
}

TEST(ShardedDifferential, AllPoliciesOnRandomWorkloads) {
  for (double mu : {1.0, 8.0, 64.0}) {
    WorkloadSpec spec;
    spec.numItems = 120;
    spec.mu = mu;
    Instance inst = generateWorkload(spec, 1);
    expectShardedEquivalence(inst, "mu=" + std::to_string(mu));
  }
}

TEST(ShardedDifferential, ManyOpenBinsStress) {
  // Large live sets spread across many categories: partitioned policies
  // actually exercise several shards concurrently.
  WorkloadSpec spec;
  spec.numItems = 400;
  spec.mu = 16.0;
  spec.arrivalRate = 64.0;
  Instance inst = generateWorkload(spec, 13);
  expectShardedEquivalence(inst, "many-open");
}

TEST(ShardedDifferential, AdversarialSliverTrap) {
  // Exact-epsilon levels and simultaneous departures: the construction
  // that catches any drain order other than the batch (time, id) key —
  // here it must also survive the cross-shard merge.
  Instance inst = firstFitSliverTrap(12, 8.0);
  expectShardedEquivalence(inst, "sliver-trap");
}

TEST(ShardedDifferential, SimultaneousEventsPinDrainOrder) {
  Instance inst = InstanceBuilder()
                      .add(0.5, 0.0, 4.0)
                      .add(0.3, 0.0, 4.0)
                      .add(0.2, 1.0, 4.0)
                      .add(0.9, 4.0, 6.0)   // arrives as all three depart
                      .add(0.6, 4.0, 5.0)
                      .add(0.4, 4.5, 6.0)
                      .build();
  expectShardedEquivalence(inst, "simultaneous-events");
}

TEST(ShardedDifferential, EpochBoundariesPreserveIdentity) {
  // Tiny epochs against a 400-item workload: dozens of feed->worker
  // handovers and buffer recycles per shard, with a pipeline bound small
  // enough that the feed thread blocks on buffer reuse.
  WorkloadSpec wspec;
  wspec.numItems = 400;
  wspec.mu = 16.0;
  wspec.arrivalRate = 64.0;
  Instance canonical(generateWorkload(wspec, 21).sortedByArrival());
  PolicyContext context = PolicyContext::forInstance(canonical);

  for (const std::string& spec : allSpecs()) {
    BatchRun indexed =
        runBatch(canonical, spec, context, PlacementEngine::kIndexed);
    for (std::size_t threads : workerCounts()) {
      SCOPED_TRACE(spec + " / t" + std::to_string(threads));
      PolicyPtr policy = makePolicy(spec, context);
      ShardedOptions options;
      options.threads = threads;
      options.epochArrivals = 8;
      options.maxEpochsInFlight = 2;
      options.capturePlacements = true;
      ShardedSimulator sim(*policy, options);
      for (const Item& r : canonical.sortedByArrival()) sim.feed(r);
      ShardedResult result = sim.finish();

      EXPECT_EQ(result.items, canonical.size());
      EXPECT_GE(result.epochs, canonical.size() / options.epochArrivals);
      EXPECT_EQ(result.totalUsage, indexed.sim.totalUsage);
      EXPECT_EQ(result.binsOpened, indexed.sim.binsOpened);
      EXPECT_EQ(result.maxOpenBins, indexed.sim.maxOpenBins);
      EXPECT_EQ(result.categoriesUsed, indexed.sim.categoriesUsed);
      ASSERT_EQ(result.binOf.size(), canonical.size());
      for (std::size_t i = 0; i < canonical.size(); ++i) {
        ASSERT_EQ(result.binOf[i],
                  indexed.sim.packing.binOf(static_cast<ItemId>(i)))
            << "item " << i;
      }
    }
  }
}

TEST(ShardedDifferential, StreamDispatchMatchesIndexedStream) {
  // simulateStream's kSharded route, including the trace-file round trip
  // and the lb3/peakOpenItems accumulators the feed thread maintains.
  WorkloadSpec wspec;
  wspec.numItems = 300;
  wspec.mu = 8.0;
  wspec.arrivalRate = 24.0;
  Instance canonical(generateWorkload(wspec, 5).sortedByArrival());
  PolicyContext context = PolicyContext::forInstance(canonical);

  for (const std::string& spec : {std::string("cdt-ff"), std::string("cd-ff"),
                                  std::string("combined-ff"),
                                  std::string("ff")}) {
    SCOPED_TRACE(spec);
    PolicyPtr indexedPolicy = makePolicy(spec, context);
    StreamOptions indexedOptions;
    InstanceArrivalSource indexedSource(canonical);
    StreamResult indexed =
        simulateStream(indexedSource, *indexedPolicy, indexedOptions);

    for (std::size_t threads : workerCounts()) {
      SCOPED_TRACE(std::string("t") + std::to_string(threads));
      PolicyPtr shardedPolicy = makePolicy(spec, context);
      StreamOptions shardedOptions;
      shardedOptions.engine = PlacementEngine::kSharded;
      shardedOptions.shardedThreads = threads;
      InstanceArrivalSource memorySource(canonical);
      StreamResult fromMemory =
          simulateStream(memorySource, *shardedPolicy, shardedOptions);
      EXPECT_EQ(fromMemory.items, indexed.items);
      EXPECT_EQ(fromMemory.totalUsage, indexed.totalUsage);
      EXPECT_EQ(fromMemory.binsOpened, indexed.binsOpened);
      EXPECT_EQ(fromMemory.maxOpenBins, indexed.maxOpenBins);
      EXPECT_EQ(fromMemory.categoriesUsed, indexed.categoriesUsed);
      // Same accumulator code in the same event order: bitwise equal.
      EXPECT_EQ(fromMemory.lb3, indexed.lb3);
      EXPECT_EQ(fromMemory.peakOpenItems, indexed.peakOpenItems);

      std::stringstream buffer;
      writeTrace(canonical, buffer, TraceFormat::kJsonl);
      TraceArrivalSource fileSource(buffer, TraceFormat::kJsonl, "jsonl");
      PolicyPtr filePolicy = makePolicy(spec, context);
      StreamResult fromFile =
          simulateStream(fileSource, *filePolicy, shardedOptions);
      EXPECT_EQ(fromFile.totalUsage, indexed.totalUsage);
      EXPECT_EQ(fromFile.binsOpened, indexed.binsOpened);
      EXPECT_EQ(fromFile.lb3, indexed.lb3);
    }
  }
}

TEST(ShardedDifferential, PartitionedPoliciesActuallyShard) {
  // A workload with spread departures and durations produces several
  // categories; with 4 workers the classification policies must land on
  // more than one shard — otherwise the whole engine silently degrades to
  // the single-shard fallback and the battery above proves nothing about
  // cross-shard merging.
  WorkloadSpec wspec;
  wspec.numItems = 400;
  wspec.mu = 64.0;
  wspec.arrivalRate = 32.0;
  Instance canonical(generateWorkload(wspec, 3).sortedByArrival());
  PolicyContext context = PolicyContext::forInstance(canonical);

  for (const std::string& spec :
       {std::string("cdt-ff"), std::string("cd-ff"),
        std::string("combined-ff"), std::string("hybrid-ff")}) {
    SCOPED_TRACE(spec);
    PolicyPtr policy = makePolicy(spec, context);
    ShardedOptions options;
    options.threads = 4;
    ShardedSimulator sim(*policy, options);
    for (const Item& r : canonical.sortedByArrival()) sim.feed(r);
    ShardedResult result = sim.finish();
    EXPECT_EQ(result.shards, 4u) << "partitioned policies get all workers";
  }

  PolicyPtr ff = makePolicy("ff", context);
  ShardedOptions options;
  options.threads = 4;
  ShardedSimulator sim(*ff, options);
  for (const Item& r : canonical.sortedByArrival()) sim.feed(r);
  EXPECT_EQ(sim.finish().shards, 1u)
      << "global-scan policies fall back to a single shard";
}

TEST(ShardedDifferential, AnnouncedDeparturesShardByAnnouncement) {
  // The policy (and hence the shard key) must see the announced departure
  // while the system evolves with the true one — same contract as the
  // other engines, so the runs stay bit-identical under announce too.
  WorkloadSpec wspec;
  wspec.numItems = 200;
  wspec.mu = 16.0;
  Instance canonical(generateWorkload(wspec, 9).sortedByArrival());
  PolicyContext context = PolicyContext::forInstance(canonical);
  auto announce = [](const Item& r) {
    return Item(r.id, r.size, r.arrival(),
                r.arrival() + 1.25 * (r.departure() - r.arrival()));
  };

  for (const std::string& spec : {std::string("cdt-ff"), std::string("cd-ff"),
                                  std::string("combined-ff")}) {
    PolicyPtr indexedPolicy = makePolicy(spec, context);
    SimOptions indexedOptions;
    indexedOptions.announce = announce;
    SimResult indexed = simulateOnline(canonical, *indexedPolicy, indexedOptions);

    for (std::size_t threads : workerCounts()) {
      SCOPED_TRACE(spec + " / t" + std::to_string(threads));
      PolicyPtr shardedPolicy = makePolicy(spec, context);
      SimOptions shardedOptions;
      shardedOptions.engine = PlacementEngine::kSharded;
      shardedOptions.shardedThreads = threads;
      shardedOptions.announce = announce;
      SimResult sharded =
          simulateOnline(canonical, *shardedPolicy, shardedOptions);
      EXPECT_EQ(sharded.totalUsage, indexed.totalUsage);
      EXPECT_EQ(sharded.binsOpened, indexed.binsOpened);
      for (std::size_t i = 0; i < canonical.size(); ++i) {
        ASSERT_EQ(sharded.packing.binOf(static_cast<ItemId>(i)),
                  indexed.packing.binOf(static_cast<ItemId>(i)))
            << "item " << i;
      }
    }
  }
}

// --- Contract and rejection coverage ---------------------------------

TEST(ShardedEngine, RejectsTraceArtifacts) {
  Instance inst = InstanceBuilder().add(0.5, 0.0, 1.0).build();
  PolicyContext context = PolicyContext::forInstance(inst);
  PolicyPtr policy = makePolicy("cdt-ff", context);

  SimOptions withTrace;
  withTrace.engine = PlacementEngine::kSharded;
  DecisionTrace trace;
  withTrace.trace = &trace;
  EXPECT_THROW(simulateOnline(inst, *policy, withTrace),
               std::invalid_argument);

  SimOptions withChrome;
  withChrome.engine = PlacementEngine::kSharded;
  telemetry::ChromeTrace chrome;
  withChrome.chromeTrace = &chrome;
  EXPECT_THROW(simulateOnline(inst, *policy, withChrome),
               std::invalid_argument);

  StreamOptions withCallback;
  withCallback.engine = PlacementEngine::kSharded;
  withCallback.onPlacement = [](ItemId, BinId, bool, int) {};
  InstanceArrivalSource source(inst);
  EXPECT_THROW(simulateStream(source, *policy, withCallback),
               std::invalid_argument);
}

TEST(ShardedEngine, StreamEngineRejectsShardedBackend) {
  Instance inst = InstanceBuilder().add(0.5, 0.0, 1.0).build();
  PolicyPtr policy = makePolicy("ff", PolicyContext::forInstance(inst));
  StreamOptions options;
  options.engine = PlacementEngine::kSharded;
  EXPECT_THROW(StreamEngine(*policy, options), std::invalid_argument);
}

PolicyContext tinyContext() {
  Instance inst = InstanceBuilder().add(0.5, 0.0, 1.0).build();
  return PolicyContext::forInstance(inst);
}

TEST(ShardedEngine, ValidatesFeedOrderAndModel) {
  PolicyContext context = tinyContext();
  PolicyPtr policy = makePolicy("cdt-ff", context);
  ShardedSimulator sim(*policy);
  sim.feed(Item(0, 0.5, 1.0, 2.0));
  // Arrival regression and (equal-arrival) id regression both reject.
  EXPECT_THROW(sim.feed(Item(1, 0.5, 0.5, 2.0)), std::invalid_argument);
  EXPECT_THROW(sim.feed(Item(0, 0.5, 1.0, 2.0)), std::invalid_argument);
  // Model violations reject with the stream engine's rules.
  EXPECT_THROW(sim.feed(Item(2, 1.5, 1.0, 2.0)), std::invalid_argument);
  EXPECT_THROW(sim.feed(Item(3, 0.5, 2.0, 2.0)), std::invalid_argument);
  ShardedResult result = sim.finish();
  EXPECT_EQ(result.items, 1u);
  EXPECT_THROW(sim.finish(), std::logic_error);
  EXPECT_THROW(sim.feed(Item(4, 0.5, 3.0, 4.0)), std::logic_error);
}

TEST(ShardedEngine, AnnounceMayOnlyPerturbDeparture) {
  PolicyContext context = tinyContext();
  PolicyPtr policy = makePolicy("cdt-ff", context);
  ShardedOptions options;
  options.announce = [](const Item& r) {
    return Item(r.id, r.size * 0.5, r.arrival(), r.departure());
  };
  ShardedSimulator sim(*policy, options);
  EXPECT_THROW(sim.feed(Item(0, 0.5, 0.0, 1.0)), std::logic_error);
}

TEST(ShardedEngine, EmptyRunYieldsEmptyResult) {
  PolicyContext context = tinyContext();
  PolicyPtr policy = makePolicy("cdt-ff", context);
  ShardedSimulator sim(*policy);
  ShardedResult result = sim.finish();
  EXPECT_EQ(result.items, 0u);
  EXPECT_EQ(result.totalUsage, 0.0);
  EXPECT_EQ(result.binsOpened, 0u);
  EXPECT_EQ(result.epochs, 0u);
}

}  // namespace
}  // namespace cdbp
