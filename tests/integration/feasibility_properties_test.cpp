// Cross-module property sweep: every algorithm in the repository, run on
// the same randomized workloads, must produce feasible packings whose usage
// is sandwiched between the Proposition 3 lower bound and the sum of item
// durations (the trivial one-bin-per-item upper bound).
#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "offline/ddff.hpp"
#include "offline/dual_coloring.hpp"
#include "online/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

struct SweepCase {
  std::uint64_t seed;
  double mu;
  SizeDist sizes;
  ArrivalProcess arrivals;
};

class AllAlgorithmsFeasibility : public ::testing::TestWithParam<SweepCase> {};

double sumOfDurations(const Instance& inst) {
  double total = 0;
  for (const Item& r : inst.items()) total += r.duration();
  return total;
}

TEST_P(AllAlgorithmsFeasibility, EveryAlgorithmSandwiched) {
  const SweepCase& c = GetParam();
  WorkloadSpec spec;
  spec.numItems = 150;
  spec.mu = c.mu;
  spec.sizes = c.sizes;
  spec.arrivals = c.arrivals;
  Instance inst = generateWorkload(spec, c.seed);
  double lb3 = lowerBounds(inst).ceilIntegral;
  double ub = sumOfDurations(inst);

  // Online roster.
  for (const PolicyPtr& policy :
       fullRoster(inst.minDuration(), inst.durationRatio())) {
    SimResult r = simulateOnline(inst, *policy);
    EXPECT_FALSE(r.packing.validate().has_value()) << policy->name();
    EXPECT_GE(r.totalUsage + 1e-6, lb3) << policy->name();
    EXPECT_LE(r.totalUsage, ub + 1e-6) << policy->name();
  }

  // Offline algorithms.
  Packing ddff = durationDescendingFirstFit(inst);
  EXPECT_FALSE(ddff.validate().has_value());
  EXPECT_GE(ddff.totalUsage() + 1e-6, lb3);
  EXPECT_LE(ddff.totalUsage(), ub + 1e-6);

  DualColoringResult dc = dualColoring(inst);
  EXPECT_FALSE(dc.packing.validate().has_value());
  EXPECT_GE(dc.packing.totalUsage() + 1e-6, lb3);
  EXPECT_LE(dc.packing.totalUsage(), ub + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllAlgorithmsFeasibility,
    ::testing::Values(
        SweepCase{1, 1.0, SizeDist::kUniform, ArrivalProcess::kPoisson},
        SweepCase{2, 4.0, SizeDist::kUniform, ArrivalProcess::kPoisson},
        SweepCase{3, 16.0, SizeDist::kUniform, ArrivalProcess::kUniform},
        SweepCase{4, 64.0, SizeDist::kUniform, ArrivalProcess::kBursty},
        SweepCase{5, 8.0, SizeDist::kSmallOnly, ArrivalProcess::kPoisson},
        SweepCase{6, 8.0, SizeDist::kFlavors, ArrivalProcess::kBursty},
        SweepCase{7, 32.0, SizeDist::kFlavors, ArrivalProcess::kUniform},
        SweepCase{8, 2.0, SizeDist::kSmallOnly, ArrivalProcess::kBursty}));

// Offline algorithms must also respect the monotonicity one expects from
// the bounds: DDFF and Dual Coloring never beat LB3, and the ratio to LB3
// stays under the proven constants whenever LB3 is the binding bound.
class OfflineRatioSanity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OfflineRatioSanity, ApproximationFactorsNeverExceedTheorems) {
  WorkloadSpec spec;
  spec.numItems = 100;
  spec.mu = 12.0;
  Instance inst = generateWorkload(spec, GetParam());
  // Against OPT_total >= LB3 the theorems still guarantee 5x / 4x because
  // the proofs bound usage by combinations of d(R), span(R) <= LB3-like
  // quantities.
  double demand = inst.demand();
  double span = inst.span();
  Packing ddff = durationDescendingFirstFit(inst);
  EXPECT_LT(ddff.totalUsage(), 4.0 * demand + span + 1e-6);
  DualColoringResult dc = dualColoring(inst);
  EXPECT_LE(dc.packing.totalUsage(),
            4.0 * lowerBounds(inst).ceilIntegral + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineRatioSanity,
                         ::testing::Range<std::uint64_t>(30, 42));

}  // namespace
}  // namespace cdbp
