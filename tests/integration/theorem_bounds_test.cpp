// End-to-end verification of the paper's headline guarantees against the
// exact optimum on brute-forceable instances, and against OPT_total on
// slightly larger ones.
#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/opt_total.hpp"
#include "offline/ddff.hpp"
#include "offline/dual_coloring.hpp"
#include "online/classify_departure.hpp"
#include "online/classify_duration.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

WorkloadSpec tinySpec(double mu) {
  WorkloadSpec spec;
  spec.numItems = 8;
  spec.arrivalRate = 3.0;
  spec.mu = mu;
  return spec;
}

class TheoremOne : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TheoremOne, DdffWithinFiveTimesOptTotal) {
  Instance inst = generateWorkload(tinySpec(6.0), GetParam());
  Packing packing = durationDescendingFirstFit(inst);
  OptTotalResult opt = optTotal(inst);
  ASSERT_TRUE(opt.exact);
  EXPECT_LE(packing.totalUsage(), 5.0 * opt.value() + 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremOne,
                         ::testing::Range<std::uint64_t>(500, 540));

class TheoremTwo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TheoremTwo, DualColoringWithinFourTimesOptTotal) {
  Instance inst = generateWorkload(tinySpec(6.0), GetParam());
  DualColoringResult result = dualColoring(inst);
  OptTotalResult opt = optTotal(inst);
  ASSERT_TRUE(opt.exact);
  EXPECT_LE(result.packing.totalUsage(), 4.0 * opt.value() + 1e-9)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremTwo,
                         ::testing::Range<std::uint64_t>(600, 640));

class TheoremFour : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TheoremFour, CdtFFWithinTheoremRatioOfOptTotal) {
  WorkloadSpec spec = tinySpec(9.0);
  spec.numItems = 24;  // OPT_total still exact at this scale
  Instance inst = generateWorkload(spec, GetParam());
  double delta = inst.minDuration();
  double mu = inst.durationRatio();
  auto policy = ClassifyByDepartureFF::withKnownDurations(delta, mu);
  SimResult r = simulateOnline(inst, policy);
  OptTotalResult opt = optTotal(inst);
  ASSERT_TRUE(opt.exact);
  double bound = 2.0 * std::sqrt(mu) + 3.0;
  EXPECT_LE(r.totalUsage, bound * opt.value() + 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremFour,
                         ::testing::Range<std::uint64_t>(700, 730));

class TheoremFive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TheoremFive, CdFFWithinTheoremRatioOfOptTotal) {
  WorkloadSpec spec = tinySpec(16.0);
  spec.numItems = 24;
  Instance inst = generateWorkload(spec, GetParam());
  double delta = inst.minDuration();
  double mu = inst.durationRatio();
  auto policy = ClassifyByDurationFF::withKnownDurations(delta, mu);
  SimResult r = simulateOnline(inst, policy);
  OptTotalResult opt = optTotal(inst);
  ASSERT_TRUE(opt.exact);
  // min_n mu^(1/n) + n + 3 evaluated through the analysis module would be
  // circular here; recompute the bound directly.
  double bound = 1e100;
  for (std::size_t n = 1; n <= 20; ++n) {
    bound = std::min(bound,
                     std::pow(mu, 1.0 / static_cast<double>(n)) +
                         static_cast<double>(n) + 3.0);
  }
  EXPECT_LE(r.totalUsage, bound * opt.value() + 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremFive,
                         ::testing::Range<std::uint64_t>(800, 830));

// The offline algorithms against the true fixed-assignment optimum (which
// is >= OPT_total, so this is the stronger comparison for them).
class OfflineVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OfflineVsBruteForce, BothOfflineAlgorithmsWithinTheirFactors) {
  Instance inst = generateWorkload(tinySpec(4.0), GetParam());
  auto opt = bruteForceOptimal(inst);
  ASSERT_TRUE(opt.has_value());
  EXPECT_LE(durationDescendingFirstFit(inst).totalUsage(),
            5.0 * opt->usage + 1e-9);
  EXPECT_LE(dualColoring(inst).packing.totalUsage(), 4.0 * opt->usage + 1e-9);
  // And OPT_total (repacking allowed) never exceeds the fixed optimum.
  EXPECT_LE(optTotal(inst).value(), opt->usage + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineVsBruteForce,
                         ::testing::Range<std::uint64_t>(900, 930));

}  // namespace
}  // namespace cdbp
