// Differential test between the multidim module and the scalar core: a
// 1-dimensional MD instance is exactly a scalar instance, so the MD
// simulator with MD-FirstFit must reproduce scalar First Fit decision for
// decision.
#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "multidim/md_lower_bounds.hpp"
#include "multidim/md_policies.hpp"
#include "online/any_fit.hpp"
#include "online/classify_departure.hpp"
#include "online/classify_duration.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

MdInstance liftToOneDim(const Instance& scalar) {
  MdInstanceBuilder builder;
  for (const Item& r : scalar.items()) {
    builder.add(Resources{r.size}, r.arrival(), r.departure());
  }
  return builder.build();
}

/// Runs the scalar policy on `scalar` and the MD policy on the 1-dim lift,
/// both under `engine`, and requires the packings to agree bin by bin,
/// item by item — the d=1 instantiation of the generic substrate must be
/// indistinguishable from the scalar simulator.
void expectMdMatchesScalar(const Instance& scalar, OnlinePolicy& scalarPolicy,
                           MdClassifyPolicy& mdPolicy, PlacementEngine engine,
                           const std::string& label) {
  SCOPED_TRACE(label + (engine == PlacementEngine::kIndexed
                            ? " engine=indexed"
                            : " engine=linear"));
  MdInstance lifted = liftToOneDim(scalar);
  SimOptions scalarOptions;
  scalarOptions.engine = engine;
  SimResult scalarRun = simulateOnline(scalar, scalarPolicy, scalarOptions);
  MdSimOptions mdOptions;
  mdOptions.engine = engine;
  MdSimResult mdRun = mdSimulateOnline(lifted, mdPolicy, mdOptions);

  ASSERT_EQ(mdRun.packing.binOf().size(), scalarRun.packing.binOf().size());
  for (ItemId i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(mdRun.packing.binOf(i), scalarRun.packing.binOf(i))
        << "item " << i;
  }
  EXPECT_NEAR(mdRun.totalUsage, scalarRun.totalUsage, 1e-9);
  EXPECT_EQ(mdRun.binsOpened, scalarRun.binsOpened);
  EXPECT_EQ(mdRun.maxOpenBins, scalarRun.maxOpenBins);
}

class MdScalarConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MdScalarConsistency, OneDimMdFirstFitEqualsScalarFirstFit) {
  WorkloadSpec spec;
  spec.numItems = 300;
  spec.mu = 12.0;
  Instance scalar = generateWorkload(spec, GetParam());
  for (PlacementEngine engine :
       {PlacementEngine::kIndexed, PlacementEngine::kLinearScan}) {
    FirstFitPolicy scalarFf;
    MdClassifyPolicy mdFf(
        {MdFitRule::kFirstFit, MdCategoryRule::kNone, 1, 1, 2});
    expectMdMatchesScalar(scalar, scalarFf, mdFf, engine, "ff");
  }
}

TEST_P(MdScalarConsistency, OneDimLowerBoundsAgree) {
  WorkloadSpec spec;
  spec.numItems = 150;
  Instance scalar = generateWorkload(spec, GetParam());
  MdLowerBounds md = mdLowerBounds(liftToOneDim(scalar));
  LowerBounds sc = lowerBounds(scalar);
  EXPECT_NEAR(md.demand, sc.demand, 1e-9);
  EXPECT_NEAR(md.span, sc.span, 1e-9);
  EXPECT_NEAR(md.ceilIntegral, sc.ceilIntegral, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MdScalarConsistency,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(MdScalarConsistency, ClassificationRulesAgreeWithScalarCounterparts) {
  WorkloadSpec spec;
  spec.numItems = 200;
  spec.mu = 16.0;
  Instance scalar = generateWorkload(spec, 11);

  for (PlacementEngine engine :
       {PlacementEngine::kIndexed, PlacementEngine::kLinearScan}) {
    // Scalar CDT-FF vs MD departure classification with the same rho.
    double rho = 4.0;
    ClassifyByDepartureFF scalarCdt(rho);
    MdClassifyPolicy mdCdt(
        {MdFitRule::kFirstFit, MdCategoryRule::kDeparture, rho, 1, 2});
    expectMdMatchesScalar(scalar, scalarCdt, mdCdt, engine, "cdt-ff");

    // Scalar CD-FF vs MD duration classification with the same base/alpha.
    double base = scalar.minDuration();
    double alpha = 2.0;
    ClassifyByDurationFF scalarCd(base, alpha);
    MdClassifyPolicy mdCd(
        {MdFitRule::kFirstFit, MdCategoryRule::kDuration, 1, base, alpha});
    expectMdMatchesScalar(scalar, scalarCd, mdCd, engine, "cd-ff");
  }
}

}  // namespace
}  // namespace cdbp
