#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "online/any_fit.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(DecisionTrace, RecordsEveryPlacement) {
  Instance inst = InstanceBuilder()
                      .add(0.6, 0, 4)
                      .add(0.6, 1, 5)
                      .add(0.3, 2, 6)
                      .build();
  DecisionTrace trace;
  SimOptions options;
  options.trace = &trace;
  FirstFitPolicy ff;
  SimResult r = simulateOnline(inst, ff, options);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.records()[0].item, 0u);
  EXPECT_TRUE(trace.records()[0].openedNewBin);
  EXPECT_EQ(trace.records()[0].openBins, 0u);  // nothing open before item 0
  EXPECT_TRUE(trace.records()[1].openedNewBin);  // 0.6 + 0.6 > 1
  EXPECT_FALSE(trace.records()[2].openedNewBin);  // 0.3 fits bin 0
  EXPECT_EQ(trace.records()[2].bin, r.packing.binOf(2));
  EXPECT_DOUBLE_EQ(trace.records()[2].binLevelBefore, 0.6);
}

TEST(DecisionTrace, AggregateStatistics) {
  DecisionTrace trace;
  trace.record({0, 0.0, 0, true, 0, 0, 0.0});
  trace.record({1, 1.0, 0, false, 0, 1, 0.5});
  trace.record({2, 2.0, 1, true, 0, 1, 0.0});
  EXPECT_NEAR(trace.newBinRate(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(trace.meanOpenBins(), 2.0 / 3.0, 1e-12);
}

TEST(DecisionTrace, EmptyAggregates) {
  DecisionTrace trace;
  EXPECT_DOUBLE_EQ(trace.newBinRate(), 0.0);
  EXPECT_DOUBLE_EQ(trace.meanOpenBins(), 0.0);
  EXPECT_TRUE(trace.empty());
}

TEST(DecisionTrace, CsvExport) {
  DecisionTrace trace;
  trace.record({7, 1.5, 2, true, 3, 4, 0.25});
  std::ostringstream out;
  trace.writeCsv(out);
  std::string text = out.str();
  EXPECT_NE(text.find("item,time,bin,new,category,openBins,levelBefore"),
            std::string::npos);
  EXPECT_NE(text.find("7,1.5,2,1,3,4,0.25"), std::string::npos);
}

TEST(DecisionTrace, ClearResets) {
  DecisionTrace trace;
  trace.record({0, 0, 0, true, 0, 0, 0});
  trace.clear();
  EXPECT_TRUE(trace.empty());
}

TEST(DecisionTrace, ConsistentWithSimResultOnRandomWorkload) {
  WorkloadSpec spec;
  spec.numItems = 300;
  Instance inst = generateWorkload(spec, 17);
  DecisionTrace trace;
  SimOptions options;
  options.trace = &trace;
  FirstFitPolicy ff;
  SimResult r = simulateOnline(inst, ff, options);
  EXPECT_EQ(trace.size(), inst.size());
  std::size_t opened = 0;
  for (const PlacementRecord& rec : trace.records()) {
    if (rec.openedNewBin) ++opened;
    EXPECT_EQ(rec.bin, r.packing.binOf(rec.item));
  }
  EXPECT_EQ(opened, r.binsOpened);
}

}  // namespace
}  // namespace cdbp
