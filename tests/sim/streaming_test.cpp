#include "sim/streaming.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/lower_bounds.hpp"
#include "online/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

/// Source yielding a fixed list verbatim — including invalid entries, to
/// exercise simulateStream's own validation (a streaming source bypasses
/// Instance's constructor gate).
class RawSource final : public ArrivalSource {
 public:
  explicit RawSource(std::vector<StreamItem> items)
      : items_(std::move(items)) {}

  bool next(StreamItem& out) override {
    if (pos_ >= items_.size()) return false;
    out = items_[pos_++];
    return true;
  }

 private:
  std::vector<StreamItem> items_;
  std::size_t pos_ = 0;
};

TEST(SimulateStream, EmptyStream) {
  RawSource source({});
  PolicyPtr policy = makePolicy("ff");
  StreamResult result = simulateStream(source, *policy);
  EXPECT_EQ(result.items, 0u);
  EXPECT_EQ(result.totalUsage, 0.0);
  EXPECT_EQ(result.binsOpened, 0u);
  EXPECT_EQ(result.peakOpenItems, 0u);
  EXPECT_EQ(result.lb3, 0.0);
}

TEST(SimulateStream, TinyHandTrace) {
  // Two overlapping halves share a bin under FF; the third arrives after
  // both depart, so the bin has closed and a new one opens.
  RawSource source({{0.5, 0.0, 4.0}, {0.5, 1.0, 3.0}, {0.5, 5.0, 6.0}});
  PolicyPtr policy = makePolicy("ff");
  StreamResult result = simulateStream(source, *policy);
  EXPECT_EQ(result.items, 3u);
  EXPECT_EQ(result.binsOpened, 2u);
  EXPECT_EQ(result.maxOpenBins, 1u);
  EXPECT_EQ(result.totalUsage, 4.0 + 1.0);
  EXPECT_EQ(result.peakOpenItems, 2u);
}

TEST(SimulateStream, OutOfOrderSourceThrows) {
  RawSource source({{0.5, 5.0, 8.0}, {0.5, 3.0, 9.0}});
  PolicyPtr policy = makePolicy("ff");
  EXPECT_THROW(simulateStream(source, *policy), std::invalid_argument);
}

TEST(SimulateStream, InvalidItemsThrow) {
  PolicyPtr policy = makePolicy("ff");
  {
    RawSource source({{0.0, 0.0, 4.0}});  // size 0
    EXPECT_THROW(simulateStream(source, *policy), std::invalid_argument);
  }
  {
    RawSource source({{1.5, 0.0, 4.0}});  // size > capacity
    EXPECT_THROW(simulateStream(source, *policy), std::invalid_argument);
  }
  {
    RawSource source({{0.5, 4.0, 4.0}});  // empty interval
    EXPECT_THROW(simulateStream(source, *policy), std::invalid_argument);
  }
  {
    RawSource source(
        {{0.5, 0.0, std::numeric_limits<double>::infinity()}});
    EXPECT_THROW(simulateStream(source, *policy), std::invalid_argument);
  }
}

TEST(SimulateStream, AnnounceMayOnlyPerturbDeparture) {
  WorkloadSpec spec;
  spec.numItems = 50;
  Instance inst = generateWorkload(spec, 7);

  // Legal: shifting only the departure.
  {
    InstanceArrivalSource source(inst);
    PolicyPtr policy = makePolicy("bf");
    StreamOptions options;
    options.announce = [](const Item& r) {
      return Item(r.id, r.size, r.arrival(), r.departure() + 0.25);
    };
    StreamResult streamed = simulateStream(source, *policy, options);

    // The same perturbation through the batch simulator agrees exactly.
    PolicyPtr batchPolicy = makePolicy("bf");
    SimOptions batchOptions;
    batchOptions.announce = options.announce;
    SimResult batch =
        simulateOnline(Instance(inst.sortedByArrival()), *batchPolicy,
                       batchOptions);
    EXPECT_EQ(streamed.totalUsage, batch.totalUsage);
    EXPECT_EQ(streamed.binsOpened, batch.binsOpened);
  }

  // Illegal: touching the size.
  {
    InstanceArrivalSource source(inst);
    PolicyPtr policy = makePolicy("bf");
    StreamOptions options;
    options.announce = [](const Item& r) {
      return Item(r.id, r.size * 0.5, r.arrival(), r.departure());
    };
    EXPECT_THROW(simulateStream(source, *policy, options), std::logic_error);
  }
}

TEST(SimulateStream, InstanceArrivalSourceReset) {
  WorkloadSpec spec;
  spec.numItems = 80;
  Instance inst = generateWorkload(spec, 21);
  InstanceArrivalSource source(inst);
  PolicyPtr policy = makePolicy("ff");
  StreamResult first = simulateStream(source, *policy);
  ASSERT_EQ(first.items, inst.size());

  // Exhausted without reset: nothing left.
  StreamResult empty = simulateStream(source, *policy);
  EXPECT_EQ(empty.items, 0u);

  source.reset();
  StreamResult second = simulateStream(source, *policy);
  EXPECT_EQ(second.items, first.items);
  EXPECT_EQ(second.totalUsage, first.totalUsage);
  EXPECT_EQ(second.binsOpened, first.binsOpened);
}

TEST(SimulateStream, OnPlacementSeesEveryItem) {
  WorkloadSpec spec;
  spec.numItems = 100;
  Instance inst = generateWorkload(spec, 5);
  InstanceArrivalSource source(inst);
  PolicyPtr policy = makePolicy("ff");
  StreamOptions options;
  std::vector<BinId> bins;
  options.onPlacement = [&](ItemId id, BinId bin, bool /*newBin*/,
                            int /*category*/) {
    EXPECT_EQ(id, static_cast<ItemId>(bins.size()));
    bins.push_back(bin);
  };
  StreamResult result = simulateStream(source, *policy, options);
  ASSERT_EQ(bins.size(), result.items);

  SimResult batch =
      simulateOnline(Instance(inst.sortedByArrival()), *policy);
  for (std::size_t i = 0; i < bins.size(); ++i) {
    EXPECT_EQ(bins[i], batch.packing.binOf(static_cast<ItemId>(i)))
        << "item " << i;
  }
}

TEST(SimulateStream, IncrementalLowerBoundTracksBatchBound) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    WorkloadSpec spec;
    spec.numItems = 300;
    spec.mu = 16.0;
    Instance inst = generateWorkload(spec, seed);
    InstanceArrivalSource source(inst);
    PolicyPtr policy = makePolicy("ff");
    StreamResult result = simulateStream(source, *policy);
    double batchLb3 = lowerBounds(inst).ceilIntegral;
    // Same epsilon-rounded integral, different accumulation order: agree
    // to floating-point tolerance, not bitwise (DESIGN.md §11.4).
    EXPECT_NEAR(result.lb3, batchLb3, 1e-9 * std::max(1.0, batchLb3))
        << "seed " << seed;
  }
}

TEST(SimulateStream, BoundedMemoryOnLongStream) {
  // 50k items at the default arrival rate: the number of simultaneously
  // live jobs stays near rate * mean-duration (a few dozen), so peak open
  // items must sit orders of magnitude below the item count.
  WorkloadSpec spec;
  spec.numItems = 50000;
  spec.mu = 16.0;
  Instance inst = generateWorkload(spec, 17);
  InstanceArrivalSource source(inst);
  PolicyPtr policy = makePolicy("ff");
  StreamResult result = simulateStream(source, *policy);
  ASSERT_EQ(result.items, 50000u);
  EXPECT_LT(result.peakOpenItems * 20, result.items)
      << "peak open items " << result.peakOpenItems
      << " is not << total items";
  EXPECT_GT(result.peakOpenItems, 0u);
  EXPECT_GT(result.peakResidentBytes, 0u);
}

TEST(SimulateStream, ChromeTraceArtifact) {
  WorkloadSpec spec;
  spec.numItems = 30;
  Instance inst = generateWorkload(spec, 2);
  InstanceArrivalSource source(inst);
  PolicyPtr policy = makePolicy("ff");
  telemetry::ChromeTrace trace;
  StreamOptions options;
  options.chromeTrace = &trace;
  simulateStream(source, *policy, options);
  // One complete event + one counter sample per arrival, plus departures'
  // counter samples and the metadata rows.
  EXPECT_GT(trace.eventCount(), 2 * inst.size());
  std::ostringstream out;
  trace.write(out);
  EXPECT_EQ(out.str().front(), '[');
  EXPECT_NE(out.str().find("open_bins"), std::string::npos);
  EXPECT_NE(out.str().find("cdbp simulation: FirstFit"), std::string::npos);
}

TEST(StreamEngine, IncrementalPlacementsMatchSimulateStream) {
  WorkloadSpec spec;
  spec.numItems = 300;
  spec.mu = 8.0;
  Instance inst(generateWorkload(spec, 9).sortedByArrival());

  PolicyPtr reference = makePolicy("cdt-ff", PolicyContext::forInstance(inst));
  InstanceArrivalSource source(inst);
  std::vector<BinId> expectedBins;
  StreamOptions options;
  options.onPlacement = [&](ItemId, BinId bin, bool, int) {
    expectedBins.push_back(bin);
  };
  StreamResult expected = simulateStream(source, *reference, options);

  PolicyPtr policy = makePolicy("cdt-ff", PolicyContext::forInstance(inst));
  StreamEngine engine(*policy);
  EXPECT_FALSE(engine.finished());
  EXPECT_EQ(engine.timeWatermark(), -std::numeric_limits<Time>::infinity());
  InstanceArrivalSource replay(inst);
  StreamItem item;
  std::size_t i = 0;
  while (replay.next(item)) {
    StreamEngine::Placement placed = engine.place(item);
    ASSERT_LT(i, expectedBins.size());
    EXPECT_EQ(placed.bin, expectedBins[i]) << "item " << i;
    EXPECT_EQ(placed.item, static_cast<ItemId>(i));
    ++i;
  }
  EXPECT_EQ(engine.itemsPlaced(), inst.size());
  StreamResult result = engine.finish();
  EXPECT_TRUE(engine.finished());
  EXPECT_EQ(result.totalUsage, expected.totalUsage);
  EXPECT_EQ(result.binsOpened, expected.binsOpened);
  EXPECT_EQ(result.maxOpenBins, expected.maxOpenBins);
  EXPECT_EQ(result.categoriesUsed, expected.categoriesUsed);
  EXPECT_EQ(result.peakOpenItems, expected.peakOpenItems);
}

TEST(StreamEngine, DrainUntilProcessesDueDepartures) {
  PolicyPtr policy = makePolicy("ff");
  StreamEngine engine(*policy);
  engine.place({0.5, 0.0, 2.0});
  engine.place({0.5, 0.0, 3.0});
  EXPECT_EQ(engine.pendingDepartures(), 2u);
  EXPECT_EQ(engine.openBins(), 1u);

  EXPECT_EQ(engine.drainUntil(1.0), 0u);  // nothing due yet
  EXPECT_EQ(engine.drainUntil(2.0), 1u);  // departures at t <= 2 drain
  EXPECT_EQ(engine.pendingDepartures(), 1u);
  EXPECT_EQ(engine.timeWatermark(), 2.0);

  // The watermark moved: an arrival behind it must be rejected (it would
  // break equivalence with the pure-streaming event order).
  EXPECT_THROW(engine.place({0.25, 1.5, 5.0}), std::invalid_argument);
  // Regressing the clock itself is equally invalid.
  EXPECT_THROW(engine.drainUntil(1.0), std::invalid_argument);

  StreamResult result = engine.finish();
  EXPECT_EQ(result.items, 2u);
  EXPECT_EQ(result.binsOpened, 1u);
  EXPECT_EQ(result.totalUsage, 3.0);
}

TEST(StreamEngine, FinishIsTerminal) {
  PolicyPtr policy = makePolicy("ff");
  StreamEngine engine(*policy);
  engine.place({0.5, 0.0, 1.0});
  engine.finish();
  EXPECT_THROW(engine.place({0.5, 2.0, 3.0}), std::logic_error);
  EXPECT_THROW(engine.drainUntil(4.0), std::logic_error);
  EXPECT_THROW(engine.finish(), std::logic_error);
}

}  // namespace
}  // namespace cdbp
