#include "sim/bin_manager.hpp"

#include <gtest/gtest.h>

#include "multidim/resources.hpp"

namespace cdbp {
namespace {

TEST(BinManager, OpensBinsWithSequentialIds) {
  BinManager mgr;
  EXPECT_EQ(mgr.openBin(0, 0.0), 0);
  EXPECT_EQ(mgr.openBin(1, 0.5), 1);
  EXPECT_EQ(mgr.binsOpened(), 2u);
  EXPECT_EQ(mgr.openCount(), 2u);
}

TEST(BinManager, TracksLevelsAndCounts) {
  BinManager mgr;
  BinId b = mgr.openBin(0, 0.0);
  mgr.addItem(b, 0.3);
  mgr.addItem(b, 0.4);
  EXPECT_DOUBLE_EQ(mgr.info(b).level, 0.7);
  EXPECT_EQ(mgr.info(b).itemCount, 2u);
}

TEST(BinManager, FitsHonorsCapacity) {
  BinManager mgr;
  BinId b = mgr.openBin(0, 0.0);
  mgr.addItem(b, 0.7);
  EXPECT_TRUE(mgr.fits(b, 0.3));
  EXPECT_FALSE(mgr.fits(b, 0.31));
}

TEST(BinManager, BinClosesWhenLastItemLeaves) {
  BinManager mgr;
  BinId b = mgr.openBin(0, 0.0);
  mgr.addItem(b, 0.3);
  mgr.addItem(b, 0.4);
  EXPECT_FALSE(mgr.removeItem(b, 0.3));
  EXPECT_TRUE(mgr.removeItem(b, 0.4));
  EXPECT_FALSE(mgr.info(b).open);
  EXPECT_EQ(mgr.openCount(), 0u);
  EXPECT_FALSE(mgr.fits(b, 0.1));  // closed bins never fit
}

TEST(BinManagerDeathTest, ClosedBinRejectsMutation) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  BinManager mgr;
  BinId b = mgr.openBin(0, 0.0);
  mgr.addItem(b, 0.3);
  mgr.removeItem(b, 0.3);
  EXPECT_DEATH(mgr.addItem(b, 0.1), "is closed");
  EXPECT_DEATH(mgr.removeItem(b, 0.1), "is not holding items");
}

TEST(BinManager, LevelResidueFlushedOnClose) {
  BinManager mgr;
  BinId b = mgr.openBin(0, 0.0);
  // Accumulate float noise across many feasible add/remove pairs (0.009 is
  // inexact in binary; 100 of them stay within the unit capacity).
  for (int i = 0; i < 100; ++i) mgr.addItem(b, 0.009);
  for (int i = 0; i < 100; ++i) {
    bool closed = mgr.removeItem(b, 0.009);
    EXPECT_EQ(closed, i == 99);
  }
  EXPECT_DOUBLE_EQ(mgr.info(b).level, 0.0);
}

TEST(BinManager, PerCategoryOpenLists) {
  BinManager mgr;
  BinId a = mgr.openBin(7, 0.0);
  BinId b = mgr.openBin(3, 0.0);
  BinId c = mgr.openBin(7, 1.0);
  EXPECT_EQ(mgr.openBins(7), (std::vector<BinId>{a, c}));
  EXPECT_EQ(mgr.openBins(3), (std::vector<BinId>{b}));
  EXPECT_TRUE(mgr.openBins(42).empty());
  mgr.addItem(a, 0.5);
  mgr.removeItem(a, 0.5);
  EXPECT_EQ(mgr.openBins(7), (std::vector<BinId>{c}));
}

TEST(BinManager, OpenBinsPreservesOpeningOrderAfterClosures) {
  BinManager mgr;
  BinId a = mgr.openBin(0, 0.0);
  BinId b = mgr.openBin(0, 1.0);
  BinId c = mgr.openBin(0, 2.0);
  mgr.addItem(b, 0.2);
  mgr.removeItem(b, 0.2);  // closes b
  EXPECT_EQ(mgr.openBins(), (std::vector<BinId>{a, c}));
}

// --- Vector (multidim) instantiation of the same manager ---

using MdManager = BasicBinManager<VectorResource>;

MdManager mdManager(std::size_t dims, bool indexed = true) {
  return MdManager(indexed, VectorResource::Shape{dims});
}

TEST(MdBinManager, TracksVectorLevels) {
  MdManager mgr = mdManager(2);
  BinId b = mgr.openBin(0, 0.0);
  mgr.addItem(b, Resources({0.3, 0.5}));
  mgr.addItem(b, Resources({0.4, 0.1}));
  EXPECT_DOUBLE_EQ(mgr.info(b).level[0], 0.7);
  EXPECT_DOUBLE_EQ(mgr.info(b).level[1], 0.6);
  EXPECT_EQ(mgr.info(b).itemCount, 2u);
}

TEST(MdBinManager, FitsHonorsEveryDimension) {
  MdManager mgr = mdManager(2);
  BinId b = mgr.openBin(0, 0.0);
  mgr.addItem(b, Resources({0.7, 0.2}));
  EXPECT_TRUE(mgr.fits(b, Resources({0.3, 0.8})));
  EXPECT_FALSE(mgr.fits(b, Resources({0.31, 0.1})));  // dim 0 overflows
  EXPECT_FALSE(mgr.fits(b, Resources({0.1, 0.81})));  // dim 1 overflows
}

TEST(MdBinManager, BinClosesWhenLastItemLeaves) {
  for (bool indexed : {true, false}) {
    MdManager mgr = mdManager(3, indexed);
    BinId b = mgr.openBin(4, 0.0);
    Resources d({0.2, 0.3, 0.4});
    mgr.addItem(b, d);
    EXPECT_TRUE(mgr.removeItem(b, d));
    EXPECT_FALSE(mgr.info(b).open);
    EXPECT_EQ(mgr.openCount(), 0u);
    EXPECT_FALSE(mgr.fits(b, Resources({0.1, 0.1, 0.1})));
    EXPECT_TRUE(mgr.openBins(4).empty());
  }
}

TEST(MdBinManagerDeathTest, ClosedBinRejectsMutation) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  MdManager mgr = mdManager(2);
  BinId b = mgr.openBin(0, 0.0);
  Resources d({0.2, 0.2});
  mgr.addItem(b, d);
  mgr.removeItem(b, d);
  EXPECT_DEATH(mgr.addItem(b, d), "is closed");
  EXPECT_DEATH(mgr.removeItem(b, d), "is not holding items");
}

}  // namespace
}  // namespace cdbp
