#include "sim/bin_manager.hpp"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(BinManager, OpensBinsWithSequentialIds) {
  BinManager mgr;
  EXPECT_EQ(mgr.openBin(0, 0.0), 0);
  EXPECT_EQ(mgr.openBin(1, 0.5), 1);
  EXPECT_EQ(mgr.binsOpened(), 2u);
  EXPECT_EQ(mgr.openCount(), 2u);
}

TEST(BinManager, TracksLevelsAndCounts) {
  BinManager mgr;
  BinId b = mgr.openBin(0, 0.0);
  mgr.addItem(b, 0.3);
  mgr.addItem(b, 0.4);
  EXPECT_DOUBLE_EQ(mgr.info(b).level, 0.7);
  EXPECT_EQ(mgr.info(b).itemCount, 2u);
}

TEST(BinManager, FitsHonorsCapacity) {
  BinManager mgr;
  BinId b = mgr.openBin(0, 0.0);
  mgr.addItem(b, 0.7);
  EXPECT_TRUE(mgr.fits(b, 0.3));
  EXPECT_FALSE(mgr.fits(b, 0.31));
}

TEST(BinManager, BinClosesWhenLastItemLeaves) {
  BinManager mgr;
  BinId b = mgr.openBin(0, 0.0);
  mgr.addItem(b, 0.3);
  mgr.addItem(b, 0.4);
  EXPECT_FALSE(mgr.removeItem(b, 0.3));
  EXPECT_TRUE(mgr.removeItem(b, 0.4));
  EXPECT_FALSE(mgr.info(b).open);
  EXPECT_EQ(mgr.openCount(), 0u);
  EXPECT_FALSE(mgr.fits(b, 0.1));  // closed bins never fit
}

TEST(BinManager, ClosedBinRejectsMutation) {
  BinManager mgr;
  BinId b = mgr.openBin(0, 0.0);
  mgr.addItem(b, 0.3);
  mgr.removeItem(b, 0.3);
  EXPECT_THROW(mgr.addItem(b, 0.1), std::logic_error);
  EXPECT_THROW(mgr.removeItem(b, 0.1), std::logic_error);
}

TEST(BinManager, LevelResidueFlushedOnClose) {
  BinManager mgr;
  BinId b = mgr.openBin(0, 0.0);
  // Accumulate float noise across many feasible add/remove pairs (0.009 is
  // inexact in binary; 100 of them stay within the unit capacity).
  for (int i = 0; i < 100; ++i) mgr.addItem(b, 0.009);
  for (int i = 0; i < 100; ++i) {
    bool closed = mgr.removeItem(b, 0.009);
    EXPECT_EQ(closed, i == 99);
  }
  EXPECT_DOUBLE_EQ(mgr.info(b).level, 0.0);
}

TEST(BinManager, PerCategoryOpenLists) {
  BinManager mgr;
  BinId a = mgr.openBin(7, 0.0);
  BinId b = mgr.openBin(3, 0.0);
  BinId c = mgr.openBin(7, 1.0);
  EXPECT_EQ(mgr.openBins(7), (std::vector<BinId>{a, c}));
  EXPECT_EQ(mgr.openBins(3), (std::vector<BinId>{b}));
  EXPECT_TRUE(mgr.openBins(42).empty());
  mgr.addItem(a, 0.5);
  mgr.removeItem(a, 0.5);
  EXPECT_EQ(mgr.openBins(7), (std::vector<BinId>{c}));
}

TEST(BinManager, OpenBinsPreservesOpeningOrderAfterClosures) {
  BinManager mgr;
  BinId a = mgr.openBin(0, 0.0);
  BinId b = mgr.openBin(0, 1.0);
  BinId c = mgr.openBin(0, 2.0);
  mgr.addItem(b, 0.2);
  mgr.removeItem(b, 0.2);  // closes b
  EXPECT_EQ(mgr.openBins(), (std::vector<BinId>{a, c}));
}

}  // namespace
}  // namespace cdbp
