// Seed-exhaustive epsilon-boundary battery for fittingLevelUpperBound and
// the BinSearch queries under category partitioning.
//
// The sharded engine (sim/sharded.hpp) gives each category its own
// BinManager + tournament tree, so its Best/First/Worst Fit answers come
// from a shard-local index built in the same relative opening order as the
// single pool's per-category lists. This battery pins, for bin levels and
// demand sizes engineered onto the kSizeEps accept/reject boundary
// (including exact-double ties and sub-epsilon perturbations):
//
//   * fittingLevelUpperBound's conservative-bound contract: every level
//     that fitsCapacity() accepts lies at or below the bound,
//   * the indexed single-pool answers == the linear scans == a brute
//     reference derived straight from fitsCapacity + the documented
//     tie-break (strict comparison keeps the earliest-opened bin),
//   * shard-local managers (one per category) give the same answers as
//     the single pool's category-restricted queries, mapped through the
//     local->global opening-order correspondence — the exact structure
//     the sharded engine relies on for bit-identical placements.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "core/epsilon.hpp"
#include "sim/bin_manager.hpp"
#include "sim/placement_view.hpp"

namespace cdbp {
namespace {

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }
  double unit() { return static_cast<double>(next() >> 11) * 0x1p-53; }
};

// Sub-epsilon offsets straddling the tolerance: every interesting band
// around the boundary, from many-epsilon clear of it down to single ulps.
const std::vector<double>& boundaryDeltas() {
  static const std::vector<double> deltas = [] {
    std::vector<double> d = {-10 * kSizeEps, -2 * kSizeEps,  -kSizeEps,
                             -kSizeEps / 2,  -kSizeEps / 64, 0.0,
                             kSizeEps / 64,  kSizeEps / 2,   kSizeEps - 1e-12,
                             kSizeEps,       kSizeEps + 1e-12, 2 * kSizeEps,
                             10 * kSizeEps};
    // ulp-scale: the rounding band fittingLevelUpperBound's 1e-12 pad is
    // there to absorb.
    double atEps = kSizeEps;
    d.push_back(std::nextafter(atEps, 0.0) - atEps + kSizeEps);  // eps - 1ulp
    d.push_back(std::nextafter(atEps, 1.0) - atEps + kSizeEps);  // eps + 1ulp
    return d;
  }();
  return deltas;
}

// One generated bin: category plus an exact level placed as one item.
struct BinSpec {
  int category = 0;
  Size level = 0;
};

// Brute-force references straight from the fitsCapacity spec.
BinId refFirstFit(const std::vector<BinId>& order, const BinManager& bins,
                  Size demand) {
  for (BinId id : order) {
    if (bins.wouldFit(id, demand)) return id;
  }
  return kNewBin;
}

BinId refBestFit(const std::vector<BinId>& order, const BinManager& bins,
                 Size demand) {
  BinId best = kNewBin;
  Size bestLevel = -1;
  for (BinId id : order) {
    if (!bins.wouldFit(id, demand)) continue;
    if (bins.info(id).level > bestLevel) {  // strict: earliest-opened wins ties
      bestLevel = bins.info(id).level;
      best = id;
    }
  }
  return best;
}

BinId refWorstFit(const std::vector<BinId>& order, const BinManager& bins,
                  Size demand) {
  BinId best = kNewBin;
  Size bestLevel = std::numeric_limits<Size>::infinity();
  for (BinId id : order) {
    if (!bins.wouldFit(id, demand)) continue;
    if (bins.info(id).level < bestLevel) {
      bestLevel = bins.info(id).level;
      best = id;
    }
  }
  return best;
}

TEST(EpsilonBoundary, FittingLevelUpperBoundIsConservative) {
  // Exhaustive over the delta grid at several base sizes: every level the
  // capacity predicate accepts must sit at or below the bound the indexed
  // Best Fit seeks down from — otherwise the index would skip a bin the
  // linear scan takes.
  for (double size : {0.125, 0.25, 0.3, 0.5, 0.7, 0.999, 1.0}) {
    for (double delta : boundaryDeltas()) {
      double level = kBinCapacity - size + delta;  // cdbp-lint: allow(capacity-compare): engineering a level onto the epsilon boundary, not a feasibility decision
      if (level <= 0 || level > kBinCapacity) continue;  // cdbp-lint: allow(capacity-compare): exact range clamp on generated probe, not a feasibility decision
      if (!fitsCapacity(level, size)) continue;
      EXPECT_LE(level, fittingLevelUpperBound(size))
          << "size=" << size << " delta=" << delta;
    }
    // And a few ulps around the bound itself.
    double bound = fittingLevelUpperBound(size);
    double probe = bound;
    for (int i = 0; i < 4; ++i) probe = std::nextafter(probe, 2.0);
    EXPECT_FALSE(fitsCapacity(probe, size))
        << "levels above the bound (plus rounding headroom) must reject";
  }
}

TEST(EpsilonBoundary, ShardLocalQueriesMatchSinglePoolSeedExhaustive) {
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);

    const int categories = 1 + static_cast<int>(rng.below(4));
    const double baseSize = 0.1 + 0.8 * rng.unit();

    // Generate 6..18 bins in random category interleavings. Levels sit on
    // the boundary for `baseSize`, with deliberate exact-double ties: a
    // quarter of the bins copy the previous bin's level verbatim.
    std::vector<BinSpec> specs;
    const std::size_t count = 6 + rng.below(13);
    for (std::size_t i = 0; i < count; ++i) {
      BinSpec spec;
      spec.category = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(categories)));
      if (!specs.empty() && rng.below(4) == 0) {
        spec.level = specs.back().level;  // exact tie (same double)
      } else {
        double delta =
            boundaryDeltas()[rng.below(boundaryDeltas().size())];
        double level = kBinCapacity - baseSize + delta;  // cdbp-lint: allow(capacity-compare): engineering a level onto the epsilon boundary, not a feasibility decision
        if (level <= 0 || level > kBinCapacity) level = 0.5 * rng.unit() + 0.1;  // cdbp-lint: allow(capacity-compare): exact range clamp on generated probe, not a feasibility decision
        spec.level = level;
      }
      specs.push_back(spec);
    }

    // Single pool (indexed + linear) with interleaved categories, and one
    // shard-local indexed manager per category, opened in the same
    // relative order — exactly how the sharded engine builds its state.
    BinManager pool(/*indexed=*/true);
    BinManager linearPool(/*indexed=*/false);
    std::map<int, BinManager> shards;
    std::map<int, std::vector<BinId>> globalByCategory;
    for (const BinSpec& spec : specs) {
      BinId id = pool.openBin(spec.category, 0);
      pool.addItem(id, spec.level);
      BinId linearId = linearPool.openBin(spec.category, 0);
      linearPool.addItem(linearId, spec.level);
      ASSERT_EQ(id, linearId);
      auto [it, inserted] =
          shards.try_emplace(spec.category, /*indexed=*/true);
      BinId local = it->second.openBin(spec.category, 0);
      it->second.addItem(local, spec.level);
      globalByCategory[spec.category].push_back(id);
    }

    PlacementView pooled(pool, 0);
    PlacementView linear(linearPool, 0);

    for (double delta : boundaryDeltas()) {
      double demand = baseSize + delta;
      if (demand <= 0 || lt(kBinCapacity, demand)) continue;
      for (int cat = 0; cat < categories; ++cat) {
        SCOPED_TRACE("cat " + std::to_string(cat) + " demand delta " +
                     std::to_string(delta));
        const std::vector<BinId>& order = pool.openBins(cat);

        BinId expectFirst = refFirstFit(order, pool, demand);
        BinId expectBest = refBestFit(order, pool, demand);
        BinId expectWorst = refWorstFit(order, pool, demand);

        // Indexed single pool == linear single pool == spec reference.
        ASSERT_EQ(pooled.firstFitIn(cat, demand), expectFirst);
        ASSERT_EQ(pooled.bestFitIn(cat, demand), expectBest);
        ASSERT_EQ(pooled.worstFitIn(cat, demand), expectWorst);
        ASSERT_EQ(linear.firstFitIn(cat, demand), expectFirst);
        ASSERT_EQ(linear.bestFitIn(cat, demand), expectBest);
        ASSERT_EQ(linear.worstFitIn(cat, demand), expectWorst);

        // Shard-local == single pool, through the opening-order map.
        auto shardIt = shards.find(cat);
        if (shardIt == shards.end()) continue;
        PlacementView local(shardIt->second, 0);
        const std::vector<BinId>& toGlobal = globalByCategory[cat];
        auto mapped = [&toGlobal](BinId localId) {
          return localId == kNewBin
                     ? kNewBin
                     : toGlobal[static_cast<std::size_t>(localId)];
        };
        ASSERT_EQ(mapped(local.firstFitIn(cat, demand)), expectFirst);
        ASSERT_EQ(mapped(local.bestFitIn(cat, demand)), expectBest);
        ASSERT_EQ(mapped(local.worstFitIn(cat, demand)), expectWorst);
      }
    }
  }
}

TEST(EpsilonBoundary, ExactTieKeepsEarliestOpenedAcrossPartitions) {
  // Three bins in one category at the identical double level, interleaved
  // with decoys in another: Best Fit's strict comparison must return the
  // earliest-opened one, in the pool and in the shard-local replica.
  const Size level = 0.625;
  BinManager pool(/*indexed=*/true);
  BinManager shard(/*indexed=*/true);
  std::vector<BinId> toGlobal;

  BinId decoy = pool.openBin(/*category=*/1, 0);
  pool.addItem(decoy, 0.9);
  for (int i = 0; i < 3; ++i) {
    BinId id = pool.openBin(/*category=*/0, 0);
    pool.addItem(id, level);
    BinId local = shard.openBin(/*category=*/0, 0);
    shard.addItem(local, level);
    toGlobal.push_back(id);
    BinId decoy2 = pool.openBin(/*category=*/1, 0);
    pool.addItem(decoy2, 0.9);
  }

  PlacementView pooled(pool, 0);
  PlacementView local(shard, 0);
  const Size demand = freeCapacity(level);  // exact fit up to rounding
  ASSERT_TRUE(fitsCapacity(level, demand));

  EXPECT_EQ(pooled.bestFitIn(0, demand), toGlobal[0]);
  EXPECT_EQ(pooled.firstFitIn(0, demand), toGlobal[0]);
  EXPECT_EQ(pooled.worstFitIn(0, demand), toGlobal[0]);
  EXPECT_EQ(local.bestFitIn(0, demand), 0);
  EXPECT_EQ(local.firstFitIn(0, demand), 0);
  EXPECT_EQ(local.worstFitIn(0, demand), 0);
  EXPECT_EQ(toGlobal[static_cast<std::size_t>(local.bestFitIn(0, demand))],
            pooled.bestFitIn(0, demand));
}

}  // namespace
}  // namespace cdbp
