#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "online/any_fit.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(Metrics, SimpleTwoBinPacking) {
  Instance inst = InstanceBuilder()
                      .add(0.5, 0, 4)   // bin 0
                      .add(0.5, 1, 3)   // bin 0
                      .add(0.75, 0, 2)  // bin 1
                      .build();
  Packing packing(inst, {0, 0, 1});
  PackingMetrics m = computeMetrics(packing);
  EXPECT_DOUBLE_EQ(m.totalUsage, 4.0 + 2.0);
  EXPECT_EQ(m.binsUsed, 2u);
  EXPECT_EQ(m.maxConcurrentBins, 2u);
  // demand = 2 + 1 + 1.5 = 4.5; utilization = 4.5 / 6.
  EXPECT_NEAR(m.utilization, 4.5 / 6.0, 1e-12);
  EXPECT_NEAR(m.wastedTime, 1.5, 1e-12);
  // open profile: 2 bins on [0,2), 1 on [2,4): avg over span 4 = 6/4.
  EXPECT_NEAR(m.avgOpenBins, 1.5, 1e-12);
  EXPECT_EQ(m.rentalLengths.count(), 2u);
}

TEST(Metrics, GapsSplitRentals) {
  Instance inst = InstanceBuilder().add(0.5, 0, 1).add(0.5, 10, 12).build();
  Packing packing(inst, {0, 0});
  PackingMetrics m = computeMetrics(packing);
  EXPECT_EQ(m.binsUsed, 1u);
  EXPECT_EQ(m.rentalLengths.count(), 2u);
  EXPECT_DOUBLE_EQ(m.rentalLengths.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.rentalLengths.max(), 2.0);
}

TEST(Metrics, EmptyPacking) {
  Instance inst;
  Packing packing(inst, {});
  PackingMetrics m = computeMetrics(packing);
  EXPECT_DOUBLE_EQ(m.totalUsage, 0.0);
  EXPECT_DOUBLE_EQ(m.utilization, 0.0);
  EXPECT_EQ(m.rentalLengths.count(), 0u);
}

TEST(Metrics, TimeSeriesSamplesProfile) {
  Instance inst = InstanceBuilder().add(0.9, 0, 10).add(0.9, 2, 8).build();
  Packing packing(inst, {0, 1});
  auto series = openBinTimeSeries(packing, 10);
  ASSERT_EQ(series.size(), 11u);
  EXPECT_DOUBLE_EQ(series.front().first, 0.0);
  EXPECT_DOUBLE_EQ(series.back().first, 10.0);
  // At t=5 both bins are open.
  EXPECT_DOUBLE_EQ(series[5].second, 2.0);
}

TEST(Metrics, TimeSeriesEmptyCases) {
  Instance inst;
  Packing packing(inst, {});
  EXPECT_TRUE(openBinTimeSeries(packing, 10).empty());
  Instance one = InstanceBuilder().add(0.5, 0, 1).build();
  Packing p1(one, {0});
  EXPECT_TRUE(openBinTimeSeries(p1, 0).empty());
}

TEST(Metrics, ConsistentWithSimulatorOnRandomWorkload) {
  WorkloadSpec spec;
  spec.numItems = 250;
  Instance inst = generateWorkload(spec, 12);
  FirstFitPolicy ff;
  SimResult r = simulateOnline(inst, ff);
  PackingMetrics m = computeMetrics(r.packing);
  EXPECT_DOUBLE_EQ(m.totalUsage, r.totalUsage);
  EXPECT_EQ(m.binsUsed, r.binsOpened);
  EXPECT_EQ(m.maxConcurrentBins, r.maxOpenBins);
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0 + 1e-9);
}

}  // namespace
}  // namespace cdbp
