// Unit tests for the capacity-indexed bin search (MinLevelTree +
// BinSearchIndex): leftmost tie-breaking, epsilon-boundary fits, slot
// growth, and category churn. The differential suite
// (tests/integration/placement_differential_test.cpp) pins the indexed
// engine against the linear scan end to end; these tests pin the data
// structure in isolation.
#include "sim/bin_search.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/epsilon.hpp"
#include "core/types.hpp"

namespace cdbp {
namespace {

TEST(MinLevelTree, AppendAssignsDenseSlots) {
  MinLevelTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.append(0.5), 0u);
  EXPECT_EQ(tree.append(0.2), 1u);
  EXPECT_EQ(tree.append(0.9), 2u);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_DOUBLE_EQ(tree.levelAt(0), 0.5);
  EXPECT_DOUBLE_EQ(tree.levelAt(1), 0.2);
  EXPECT_DOUBLE_EQ(tree.levelAt(2), 0.9);
}

TEST(MinLevelTree, FirstFitReturnsLeftmostFittingSlot) {
  MinLevelTree tree;
  tree.append(0.9);   // slot 0: only 0.1 headroom
  tree.append(0.5);   // slot 1: fits 0.5
  tree.append(0.1);   // slot 2: fits more, but slot 1 is leftmost
  EXPECT_EQ(tree.firstFit(0.5), 1u);
  EXPECT_EQ(tree.firstFit(0.05), 0u);
  EXPECT_EQ(tree.firstFit(0.6), 2u);
  EXPECT_EQ(tree.firstFit(0.95), MinLevelTree::npos);
}

TEST(MinLevelTree, FirstFitBreaksTiesLeft) {
  MinLevelTree tree;
  for (int i = 0; i < 5; ++i) tree.append(0.5);
  EXPECT_EQ(tree.firstFit(0.5), 0u);
  tree.close(0);
  EXPECT_EQ(tree.firstFit(0.5), 1u);
}

TEST(MinLevelTree, MinSlotPrefersLeftmostMinimum) {
  MinLevelTree tree;
  tree.append(0.7);
  tree.append(0.3);
  tree.append(0.3);  // same minimum as slot 1 — slot 1 wins
  EXPECT_EQ(tree.minSlot(), 1u);
  tree.update(1, 0.8);
  EXPECT_EQ(tree.minSlot(), 2u);
}

TEST(MinLevelTree, ClosedSlotsAreInvisible) {
  MinLevelTree tree;
  tree.append(0.1);
  tree.append(0.2);
  tree.close(0);
  tree.close(1);
  EXPECT_EQ(tree.firstFit(0.1), MinLevelTree::npos);
  EXPECT_EQ(tree.minSlot(), MinLevelTree::npos);
  EXPECT_EQ(tree.levelAt(0), MinLevelTree::kClosed);
}

TEST(MinLevelTree, GrowthPreservesLevelsAndAnswers) {
  // Push well past the initial capacity so the backing array doubles
  // several times; every level must survive the rebuilds.
  MinLevelTree tree;
  const std::size_t n = 300;
  for (std::size_t i = 0; i < n; ++i) {
    tree.append(static_cast<Size>(i % 10) / 10.0);
  }
  ASSERT_EQ(tree.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(tree.levelAt(i), static_cast<Size>(i % 10) / 10.0);
  }
  // Leftmost slot with level <= 0.5 that fits size 0.5 is slot 0 (level 0).
  EXPECT_EQ(tree.firstFit(0.5), 0u);
  // Close the first decade; the next zero-level slot is slot 10.
  for (std::size_t i = 0; i < 10; ++i) tree.close(i);
  EXPECT_EQ(tree.firstFit(1.0), 10u);
  EXPECT_EQ(tree.minSlot(), 10u);
}

TEST(MinLevelTree, EpsilonBoundaryMatchesFitsCapacity) {
  // The descent must use the exact fitsCapacity tolerance: a level that
  // overshoots capacity by less than kSizeEps still fits, one that
  // overshoots by more does not.
  MinLevelTree just;
  just.append(0.6);
  EXPECT_TRUE(fitsCapacity(0.6, 0.4 + kSizeEps / 2));
  EXPECT_EQ(just.firstFit(0.4 + kSizeEps / 2), 0u);
  EXPECT_FALSE(fitsCapacity(0.6, 0.4 + 10 * kSizeEps));
  EXPECT_EQ(just.firstFit(0.4 + 10 * kSizeEps), MinLevelTree::npos);
}

TEST(BinSearchIndex, QueriesEmptyIndexReturnNewBin) {
  BinSearchIndex index;
  EXPECT_EQ(index.firstFit(0.5), kNewBin);
  EXPECT_EQ(index.bestFit(0.5), kNewBin);
  EXPECT_EQ(index.worstFit(0.5), kNewBin);
  EXPECT_EQ(index.firstFitIn(3, 0.5), kNewBin);
  EXPECT_EQ(index.bestFitIn(3, 0.5), kNewBin);
  EXPECT_EQ(index.worstFitIn(3, 0.5), kNewBin);
}

TEST(BinSearchIndex, FirstBestWorstAgreeWithDefinitions) {
  BinSearchIndex index;
  index.onOpen(0, 0);
  index.onLevelChange(0, 0.7);
  index.onOpen(1, 0);
  index.onLevelChange(1, 0.4);
  index.onOpen(2, 0);
  index.onLevelChange(2, 0.2);

  // size 0.5: bin 0 (level .7) does not fit; leftmost fitting is bin 1.
  EXPECT_EQ(index.firstFit(0.5), 1);
  // Best Fit: fullest fitting bin = bin 1 (level .4 > .2).
  EXPECT_EQ(index.bestFit(0.5), 1);
  // Worst Fit: emptiest bin overall = bin 2.
  EXPECT_EQ(index.worstFit(0.5), 2);
  // size 0.25 fits everywhere: Best Fit now picks bin 0.
  EXPECT_EQ(index.firstFit(0.25), 0);
  EXPECT_EQ(index.bestFit(0.25), 0);
}

TEST(BinSearchIndex, BestFitBreaksLevelTiesByEarliestBin) {
  BinSearchIndex index;
  index.onOpen(0, 0);
  index.onLevelChange(0, 0.5);
  index.onOpen(1, 0);
  index.onLevelChange(1, 0.5);
  index.onOpen(2, 0);
  index.onLevelChange(2, 0.5);
  EXPECT_EQ(index.bestFit(0.3), 0);
  index.onClose(0);
  EXPECT_EQ(index.bestFit(0.3), 1);
}

TEST(BinSearchIndex, BestFitSkipsNonFittingLevelRuns) {
  // Several bins share a level that does not fit; the query must skip the
  // whole run and land on the fullest level that does.
  BinSearchIndex index;
  for (BinId id = 0; id < 4; ++id) {
    index.onOpen(id, 0);
    index.onLevelChange(id, 0.8);  // none of these fit size 0.3
  }
  index.onOpen(4, 0);
  index.onLevelChange(4, 0.6);
  index.onOpen(5, 0);
  index.onLevelChange(5, 0.1);
  EXPECT_EQ(index.bestFit(0.3), 4);
  index.onClose(4);
  EXPECT_EQ(index.bestFit(0.3), 5);
}

TEST(BinSearchIndex, EpsilonBoundaryFitsInAllThreeQueries) {
  BinSearchIndex index;
  index.onOpen(0, 0);
  index.onLevelChange(0, 0.6);
  Size justFits = 0.4 + kSizeEps / 2;
  Size tooBig = 0.4 + 10 * kSizeEps;
  EXPECT_EQ(index.firstFit(justFits), 0);
  EXPECT_EQ(index.bestFit(justFits), 0);
  EXPECT_EQ(index.worstFit(justFits), 0);
  EXPECT_EQ(index.firstFit(tooBig), kNewBin);
  EXPECT_EQ(index.bestFit(tooBig), kNewBin);
  EXPECT_EQ(index.worstFit(tooBig), kNewBin);
}

TEST(BinSearchIndex, CategoryScopesAreIndependent) {
  BinSearchIndex index;
  index.onOpen(0, 7);
  index.onLevelChange(0, 0.2);
  index.onOpen(1, 9);
  index.onLevelChange(1, 0.1);

  EXPECT_EQ(index.firstFitIn(7, 0.5), 0);
  EXPECT_EQ(index.firstFitIn(9, 0.5), 1);
  EXPECT_EQ(index.firstFitIn(8, 0.5), kNewBin);
  // The global scope sees both; bin 0 is leftmost, bin 1 is emptiest.
  EXPECT_EQ(index.firstFit(0.5), 0);
  EXPECT_EQ(index.worstFit(0.5), 1);
}

TEST(BinSearchIndex, CategoryChurnRoutesToFreshBins) {
  // Open and close bins of the same category repeatedly: closed slots must
  // stay invisible and new bins (new dense ids) must be found, including
  // by an already-materialized Best Fit set.
  BinSearchIndex index;
  BinId next = 0;
  for (int round = 0; round < 5; ++round) {
    BinId a = next++;
    BinId b = next++;
    index.onOpen(a, 42);
    index.onLevelChange(a, 0.5);
    index.onOpen(b, 42);
    index.onLevelChange(b, 0.3);
    EXPECT_EQ(index.firstFitIn(42, 0.4), a);
    EXPECT_EQ(index.bestFitIn(42, 0.4), a);
    EXPECT_EQ(index.worstFitIn(42, 0.4), b);
    index.onClose(a);
    EXPECT_EQ(index.firstFitIn(42, 0.4), b);
    EXPECT_EQ(index.bestFitIn(42, 0.4), b);
    index.onClose(b);
    EXPECT_EQ(index.firstFitIn(42, 0.4), kNewBin);
    EXPECT_EQ(index.bestFitIn(42, 0.4), kNewBin);
    EXPECT_EQ(index.worstFitIn(42, 0.4), kNewBin);
  }
}

TEST(BinSearchIndex, LevelChangesKeepBestFitSetCurrent) {
  BinSearchIndex index;
  index.onOpen(0, 0);
  index.onLevelChange(0, 0.3);
  index.onOpen(1, 0);
  index.onLevelChange(1, 0.2);
  EXPECT_EQ(index.bestFit(0.5), 0);  // materializes the set
  // Items arrive and depart: the incremental maintenance must track.
  index.onLevelChange(1, 0.45);
  EXPECT_EQ(index.bestFit(0.5), 1);
  index.onLevelChange(1, 0.05);
  EXPECT_EQ(index.bestFit(0.5), 0);
  index.onLevelChange(0, 0.9);
  EXPECT_EQ(index.bestFit(0.5), 1);
}

}  // namespace
}  // namespace cdbp
