#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "online/any_fit.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

// A policy that always opens a new bin: maximally wasteful but trivially
// correct; used to probe the simulator's accounting.
class AlwaysNewBin : public OnlinePolicy {
 public:
  std::string name() const override { return "AlwaysNewBin"; }
  bool clairvoyant() const override { return false; }
  PlacementDecision place(const PlacementView&, const Item&) override {
    return PlacementDecision::fresh(0);
  }
};

// A deliberately broken policy that targets bin 0 forever.
class StuckOnBinZero : public OnlinePolicy {
 public:
  std::string name() const override { return "StuckOnBinZero"; }
  bool clairvoyant() const override { return false; }
  PlacementDecision place(const PlacementView& view, const Item&) override {
    if (view.binsOpened() == 0) return PlacementDecision::fresh(0);
    return PlacementDecision::existing(0);
  }
};

TEST(Simulator, AlwaysNewBinUsageIsSumOfDurations) {
  Instance inst = InstanceBuilder()
                      .add(0.2, 0, 2)
                      .add(0.2, 1, 4)
                      .add(0.2, 3, 6)
                      .build();
  AlwaysNewBin policy;
  SimResult result = simulateOnline(inst, policy);
  EXPECT_EQ(result.binsOpened, 3u);
  EXPECT_DOUBLE_EQ(result.totalUsage, 2.0 + 3.0 + 3.0);
  EXPECT_FALSE(result.packing.validate().has_value());
}

TEST(Simulator, DepartureFreesCapacityForSameInstantArrival) {
  // Item 0 occupies the whole bin on [0,1); item 1 arrives exactly at 1.
  Instance inst = InstanceBuilder().add(1.0, 0, 1).add(1.0, 1, 2).build();
  FirstFitPolicy ff;
  SimResult result = simulateOnline(inst, ff);
  // The bin closed at t=1 (it emptied), so First Fit opens a second bin:
  // closed bins never reopen in the online model.
  EXPECT_EQ(result.binsOpened, 2u);
  EXPECT_DOUBLE_EQ(result.totalUsage, 2.0);
}

TEST(Simulator, OverlappingSameInstantItemsShareWhenFeasible) {
  Instance inst = InstanceBuilder().add(0.5, 0, 2).add(0.5, 0, 2).build();
  FirstFitPolicy ff;
  SimResult result = simulateOnline(inst, ff);
  EXPECT_EQ(result.binsOpened, 1u);
  EXPECT_DOUBLE_EQ(result.totalUsage, 2.0);
}

TEST(Simulator, ThrowsOnInfeasiblePolicyDecision) {
  Instance inst = InstanceBuilder().add(0.9, 0, 2).add(0.9, 1, 3).build();
  StuckOnBinZero policy;
  EXPECT_THROW(simulateOnline(inst, policy), std::logic_error);
}

TEST(Simulator, ThrowsWhenPolicyTargetsClosedBin) {
  Instance inst = InstanceBuilder().add(0.9, 0, 1).add(0.9, 5, 6).build();
  StuckOnBinZero policy;  // bin 0 closes at t=1, item 1 arrives at 5
  EXPECT_THROW(simulateOnline(inst, policy), std::logic_error);
}

TEST(Simulator, MaxOpenBinsTracksPeak) {
  Instance inst = InstanceBuilder()
                      .add(0.9, 0, 10)
                      .add(0.9, 1, 3)
                      .add(0.9, 2, 4)
                      .build();
  FirstFitPolicy ff;
  SimResult result = simulateOnline(inst, ff);
  EXPECT_EQ(result.maxOpenBins, 3u);
  EXPECT_EQ(result.packing.maxConcurrentBins(), 3u);
}

TEST(Simulator, AnnounceHookPerturbsOnlyWhatPoliciesSee) {
  Instance inst = InstanceBuilder().add(0.4, 0, 10).add(0.4, 0, 10).build();
  // Record what the policy received.
  struct Recorder : OnlinePolicy {
    std::vector<Time> seenDepartures;
    std::string name() const override { return "Recorder"; }
    bool clairvoyant() const override { return true; }
    PlacementDecision place(const PlacementView& view, const Item& item) override {
      seenDepartures.push_back(item.departure());
      for (BinId id : view.openBins()) {
        if (view.fits(id, item.size)) return PlacementDecision::existing(id);
      }
      return PlacementDecision::fresh(0);
    }
  } recorder;

  SimOptions options;
  options.announce = [](const Item& r) {
    return Item(r.id, r.size, r.arrival(), r.departure() * 2);
  };
  SimResult result = simulateOnline(inst, recorder, options);
  ASSERT_EQ(recorder.seenDepartures.size(), 2u);
  EXPECT_DOUBLE_EQ(recorder.seenDepartures[0], 20.0);
  // The system still evolves with the true departures.
  EXPECT_DOUBLE_EQ(result.totalUsage, 10.0);
}

TEST(Simulator, AnnounceMayNotChangeSizeOrArrival) {
  Instance inst = InstanceBuilder().add(0.4, 0, 10).build();
  FirstFitPolicy ff;
  SimOptions options;
  options.announce = [](const Item& r) {
    return Item(r.id, r.size * 0.5, r.arrival(), r.departure());
  };
  EXPECT_THROW(simulateOnline(inst, ff, options), std::logic_error);
}

TEST(Simulator, CategoriesUsedCountsDistinctTags) {
  Instance inst = InstanceBuilder()
                      .add(0.4, 0, 1)
                      .add(0.4, 0, 1)
                      .add(0.4, 0, 1)
                      .build();
  struct TagPerItem : OnlinePolicy {
    int next = 0;
    std::string name() const override { return "TagPerItem"; }
    bool clairvoyant() const override { return false; }
    PlacementDecision place(const PlacementView&, const Item&) override {
      return PlacementDecision::fresh(next++);
    }
    void reset() override { next = 0; }
  } tagger;
  SimResult result = simulateOnline(inst, tagger);
  EXPECT_EQ(result.categoriesUsed, 3u);
}

class SimulatorFeasibility : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorFeasibility, FirstFitPackingsAlwaysValidate) {
  WorkloadSpec spec;
  spec.numItems = 300;
  spec.mu = 12.0;
  Instance inst = generateWorkload(spec, GetParam());
  FirstFitPolicy ff;
  SimResult result = simulateOnline(inst, ff);
  EXPECT_FALSE(result.packing.validate().has_value());
  EXPECT_DOUBLE_EQ(result.totalUsage, result.packing.totalUsage());
  EXPECT_EQ(result.binsOpened, result.packing.numBins());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFeasibility,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace cdbp
