// runMany contract tests: grid ordering, determinism across thread
// counts, shared lower bounds, per-cell trace capture, and error
// propagation out of worker threads.
#include "sim/run_many.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/lower_bounds.hpp"
#include "online/any_fit.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

std::function<Instance(std::uint64_t)> generator(std::size_t items,
                                                 double mu) {
  WorkloadSpec spec;
  spec.numItems = items;
  spec.mu = mu;
  return [spec](std::uint64_t seed) { return generateWorkload(spec, seed); };
}

TEST(RunMany, ResultsArriveInGridOrder) {
  RunManySpec spec;
  spec.instances = {generator(40, 4.0), generator(60, 8.0)};
  spec.policies = {"ff", "bf", "nf"};
  spec.seeds = {5, 6};
  spec.threads = 4;
  std::vector<RunResult> results = runMany(spec);
  ASSERT_EQ(results.size(), 2u * 3u * 2u);
  std::size_t cell = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t p = 0; p < 3; ++p) {
      for (std::size_t s = 0; s < 2; ++s, ++cell) {
        EXPECT_EQ(results[cell].instanceIndex, i);
        EXPECT_EQ(results[cell].policyIndex, p);
        EXPECT_EQ(results[cell].seedIndex, s);
        EXPECT_EQ(results[cell].seed, spec.seeds[s]);
        ASSERT_NE(results[cell].instance, nullptr);
        // Instance axis controls the size; the policy axis must not.
        EXPECT_EQ(results[cell].instance->size(), i == 0 ? 40u : 60u);
      }
    }
  }
  EXPECT_EQ(results[0].policyName, "FirstFit");
  EXPECT_EQ(results[2].policyName, "BestFit");
  EXPECT_EQ(results[4].policyName, "NextFit");
}

TEST(RunMany, DeterministicAcrossThreadCounts) {
  RunManySpec spec;
  spec.instances = {generator(80, 16.0)};
  spec.policies = {"ff", "bf", "wf", "cdt-ff", "rf(seed=3)"};
  spec.seeds = {11, 12, 13};

  spec.threads = 1;
  std::vector<RunResult> serial = runMany(spec);
  spec.threads = 8;
  std::vector<RunResult> parallel = runMany(spec);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t c = 0; c < serial.size(); ++c) {
    EXPECT_EQ(serial[c].policyName, parallel[c].policyName) << "cell " << c;
    EXPECT_EQ(serial[c].sim.totalUsage, parallel[c].sim.totalUsage)
        << "cell " << c;
    EXPECT_EQ(serial[c].sim.binsOpened, parallel[c].sim.binsOpened)
        << "cell " << c;
    EXPECT_EQ(serial[c].sim.maxOpenBins, parallel[c].sim.maxOpenBins)
        << "cell " << c;
    EXPECT_EQ(serial[c].lb3, parallel[c].lb3) << "cell " << c;
  }
}

TEST(RunMany, SharesInstanceAndLowerBoundAcrossPolicyCells) {
  RunManySpec spec;
  spec.instances = {generator(50, 8.0)};
  spec.policies = {"ff", "bf"};
  spec.seeds = {21};
  std::vector<RunResult> results = runMany(spec);
  ASSERT_EQ(results.size(), 2u);
  // Both policy cells see the same generated instance object.
  EXPECT_EQ(results[0].instance.get(), results[1].instance.get());
  EXPECT_EQ(results[0].lb3, results[1].lb3);
  double expected = lowerBounds(*results[0].instance).ceilIntegral;
  EXPECT_EQ(results[0].lb3, expected);
  EXPECT_DOUBLE_EQ(results[0].ratio, results[0].sim.totalUsage / expected);
}

TEST(RunMany, LowerBoundCanBeDisabled) {
  RunManySpec spec;
  spec.instances = {generator(30, 4.0)};
  spec.policies = {"ff"};
  spec.seeds = {3};
  spec.computeLowerBound = false;
  std::vector<RunResult> results = runMany(spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].lb3, 0.0);
  EXPECT_EQ(results[0].ratio, 1.0);
}

TEST(RunMany, CapturesPerCellDecisionTraces) {
  RunManySpec spec;
  spec.instances = {generator(35, 4.0)};
  spec.policies = {"ff", "cdt-ff"};
  spec.seeds = {9, 10};
  spec.captureTrace = true;
  std::vector<RunResult> results = runMany(spec);
  ASSERT_EQ(results.size(), 4u);
  for (const RunResult& run : results) {
    ASSERT_NE(run.trace, nullptr);
    EXPECT_EQ(run.trace->records().size(), run.instance->size());
  }
  // Traces are per-cell objects, not shared.
  EXPECT_NE(results[0].trace.get(), results[1].trace.get());
}

TEST(RunMany, TraceIsNullWhenNotRequested) {
  RunManySpec spec;
  spec.instances = {generator(20, 4.0)};
  spec.policies = {"ff"};
  spec.seeds = {1};
  std::vector<RunResult> results = runMany(spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].trace, nullptr);
}

TEST(RunMany, EnginesProduceIdenticalResults) {
  RunManySpec spec;
  spec.instances = {generator(70, 16.0)};
  spec.policies = {"ff", "bf", "wf", "cd-ff"};
  spec.seeds = {41, 42};

  spec.engine = PlacementEngine::kIndexed;
  std::vector<RunResult> indexed = runMany(spec);
  spec.engine = PlacementEngine::kLinearScan;
  std::vector<RunResult> linear = runMany(spec);

  ASSERT_EQ(indexed.size(), linear.size());
  for (std::size_t c = 0; c < indexed.size(); ++c) {
    EXPECT_EQ(indexed[c].sim.totalUsage, linear[c].sim.totalUsage)
        << "cell " << c;
    EXPECT_EQ(indexed[c].sim.binsOpened, linear[c].sim.binsOpened)
        << "cell " << c;
  }
}

TEST(RunMany, FactoryEscapeHatchOverridesSpecParsing) {
  RunManySpec spec;
  spec.instances = {generator(25, 4.0)};
  spec.policies.emplace_back(
      "not-a-parsable-spec", [](const PolicyContext&) -> PolicyPtr {
        return std::make_unique<FirstFitPolicy>();
      });
  spec.seeds = {2};
  std::vector<RunResult> results = runMany(spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].policyName, "FirstFit");
}

TEST(RunMany, FixedContextOverridesPerInstanceDerivation) {
  RunManySpec spec;
  spec.instances = {generator(40, 16.0)};
  spec.policies = {"cdt-ff"};
  spec.seeds = {7};
  PolicyContext context;
  context.minDuration = 2.0;
  context.mu = 9.0;  // rho = sqrt(9) * 2 = 6
  spec.context = context;
  std::vector<RunResult> results = runMany(spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].policyName, "CDT-FF(rho=6)");
}

TEST(RunMany, BadSpecStringPropagatesAsInvalidArgument) {
  RunManySpec spec;
  spec.instances = {generator(10, 4.0)};
  spec.policies = {"no-such-policy"};
  spec.seeds = {1};
  EXPECT_THROW(runMany(spec), std::invalid_argument);
}

TEST(RunMany, GeneratorExceptionPropagates) {
  RunManySpec spec;
  spec.instances = {[](std::uint64_t) -> Instance {
    throw std::runtime_error("generator boom");
  }};
  spec.policies = {"ff"};
  spec.seeds = {1};
  EXPECT_THROW(runMany(spec), std::runtime_error);
}

TEST(RunMany, EmptyGridIsEmpty) {
  RunManySpec spec;
  EXPECT_TRUE(runMany(spec).empty());
  spec.instances = {generator(10, 4.0)};
  spec.policies = {"ff"};
  // No seeds -> no cells.
  EXPECT_TRUE(runMany(spec).empty());
}


TEST(RunCells, VisitsEveryCellExactlyOnce) {
  for (unsigned threads : {1u, 4u}) {
    std::vector<int> visits(100, 0);
    runCells(threads, visits.size(),
             [&](std::size_t i) { visits[i] += 1; });
    for (std::size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i], 1) << "cell " << i << " threads " << threads;
    }
  }
}

TEST(RunCells, ZeroCountIsANoOp) {
  runCells(2, 0, [](std::size_t) { FAIL() << "fn must not be called"; });
}

TEST(RunCells, ExceptionsPropagate) {
  EXPECT_THROW(runCells(2, 8,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("cell boom");
                        }),
               std::runtime_error);
}

}  // namespace
}  // namespace cdbp
