#include "flexible/flexible_job.hpp"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(FlexibleJob, SlackAndLatestStart) {
  FlexibleJob j(0, 0.5, 2.0, 10.0, 3.0);
  EXPECT_DOUBLE_EQ(j.slack(), 5.0);
  EXPECT_DOUBLE_EQ(j.latestStart(), 7.0);
}

TEST(FlexibleInstance, ValidatesWindowFitsLength) {
  EXPECT_THROW(FlexibleInstanceBuilder().add(0.5, 0, 2, 3).build(),
               InstanceError);
  EXPECT_NO_THROW(FlexibleInstanceBuilder().add(0.5, 0, 3, 3).build());
}

TEST(FlexibleInstance, ValidatesSizeAndLength) {
  EXPECT_THROW(FlexibleInstanceBuilder().add(0.0, 0, 5, 1).build(), InstanceError);
  EXPECT_THROW(FlexibleInstanceBuilder().add(1.5, 0, 5, 1).build(), InstanceError);
  EXPECT_THROW(FlexibleInstanceBuilder().add(0.5, 0, 5, 0).build(), InstanceError);
}

TEST(FlexibleInstance, MaterializeUsesGivenStarts) {
  FlexibleInstance inst = FlexibleInstanceBuilder()
                              .add(0.5, 0, 10, 2)
                              .add(0.3, 1, 20, 5)
                              .build();
  Instance fixed = inst.materialize({3.0, 10.0});
  EXPECT_DOUBLE_EQ(fixed[0].arrival(), 3.0);
  EXPECT_DOUBLE_EQ(fixed[0].departure(), 5.0);
  EXPECT_DOUBLE_EQ(fixed[1].arrival(), 10.0);
  EXPECT_DOUBLE_EQ(fixed[1].departure(), 15.0);
}

TEST(FlexibleInstance, MaterializeChecksArity) {
  FlexibleInstance inst = FlexibleInstanceBuilder().add(0.5, 0, 10, 2).build();
  EXPECT_THROW(inst.materialize({1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace cdbp
