#include "flexible/flexible_scheduler.hpp"

#include <gtest/gtest.h>

#include "flexible/flexible_workload.hpp"

namespace cdbp {
namespace {

TEST(ScheduleAsap, StartsEveryJobAtRelease) {
  FlexibleInstance inst = FlexibleInstanceBuilder()
                              .add(0.5, 1, 10, 2)
                              .add(0.5, 3, 20, 4)
                              .build();
  FlexibleSchedule s = scheduleAsap(inst);
  EXPECT_DOUBLE_EQ(s.starts[0], 1.0);
  EXPECT_DOUBLE_EQ(s.starts[1], 3.0);
  EXPECT_FALSE(s.validate(inst).has_value());
}

TEST(ScheduleAligned, ExploitsSlackToOverlapJobs) {
  // B's window allows running exactly alongside A at zero marginal usage;
  // ASAP cannot move it, so any later start would stick out past A.
  FlexibleInstance inst = FlexibleInstanceBuilder()
                              .add(0.5, 0, 10, 10)   // A: fixed [0,10)
                              .add(0.4, 0, 15, 10)   // B: window allows [0,10)
                              .build();
  FlexibleSchedule asap = scheduleAsap(inst);
  FlexibleSchedule aligned = scheduleAligned(inst);
  EXPECT_FALSE(aligned.validate(inst).has_value());
  // Aligned: both on [0,10) in one bin -> usage 10.
  EXPECT_DOUBLE_EQ(aligned.totalUsage, 10.0);
  EXPECT_LE(aligned.totalUsage, asap.totalUsage);
}

TEST(ScheduleAligned, NestlesShortJobIntoPaidPeriod) {
  FlexibleInstance inst = FlexibleInstanceBuilder()
                              .add(0.6, 0, 10, 10)   // anchor, no slack
                              .add(0.3, 2, 30, 4)    // can sit anywhere in [2,26]
                              .build();
  FlexibleSchedule aligned = scheduleAligned(inst);
  EXPECT_FALSE(aligned.validate(inst).has_value());
  // The short job fits inside the anchor's busy period at zero cost.
  EXPECT_DOUBLE_EQ(aligned.totalUsage, 10.0);
  EXPECT_LE(aligned.starts[1] + 4.0, 10.0 + 1e-9);
}

TEST(ScheduleAligned, RespectsCapacityWhenNestling) {
  // The short job's window forces it to overlap the anchor in time, and
  // 0.8 + 0.6 exceeds the capacity, so it must take its own bin.
  FlexibleInstance inst = FlexibleInstanceBuilder()
                              .add(0.8, 0, 10, 10)
                              .add(0.6, 2, 9, 4)  // latest start 5 < anchor end
                              .build();
  FlexibleSchedule aligned = scheduleAligned(inst);
  EXPECT_FALSE(aligned.validate(inst).has_value());
  EXPECT_EQ(aligned.packing.numBins(), 2u);
}

TEST(ScheduleAligned, ReusesABinAfterItsJobsDepart) {
  // With enough slack the short job slides past the anchor's departure and
  // reuses the same bin at disjoint times (offline bins may have gaps).
  FlexibleInstance inst = FlexibleInstanceBuilder()
                              .add(0.8, 0, 10, 10)
                              .add(0.6, 2, 30, 4)
                              .build();
  FlexibleSchedule aligned = scheduleAligned(inst);
  EXPECT_FALSE(aligned.validate(inst).has_value());
  EXPECT_EQ(aligned.packing.numBins(), 1u);
  EXPECT_GE(aligned.starts[1], 10.0 - 1e-9);
}

TEST(ScheduleAligned, ZeroSlackDegeneratesToFixedIntervals) {
  FlexibleInstance inst = FlexibleInstanceBuilder()
                              .add(0.5, 0, 4, 4)
                              .add(0.5, 1, 6, 5)
                              .build();
  FlexibleSchedule aligned = scheduleAligned(inst);
  EXPECT_DOUBLE_EQ(aligned.starts[0], 0.0);
  EXPECT_DOUBLE_EQ(aligned.starts[1], 1.0);
  EXPECT_FALSE(aligned.validate(inst).has_value());
}

TEST(ScheduleValidate, CatchesWindowViolation) {
  FlexibleInstance inst = FlexibleInstanceBuilder().add(0.5, 0, 10, 2).build();
  FlexibleSchedule s = scheduleAsap(inst);
  s.starts[0] = 9.5;  // start+length = 11.5 > deadline
  EXPECT_TRUE(s.validate(inst).has_value());
}

class FlexibleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlexibleProperty, BothSchedulersValidAndAlignedNoWorseOnAverage) {
  FlexibleWorkloadSpec spec;
  spec.numJobs = 200;
  spec.slackFactor = 2.0;
  FlexibleInstance inst = generateFlexibleWorkload(spec, GetParam());
  FlexibleSchedule asap = scheduleAsap(inst);
  FlexibleSchedule aligned = scheduleAligned(inst);
  EXPECT_FALSE(asap.validate(inst).has_value());
  EXPECT_FALSE(aligned.validate(inst).has_value());
  // Greedy alignment is a heuristic, not a theorem — allow a small loss
  // margin per instance; the bench tracks the average saving.
  EXPECT_LE(aligned.totalUsage, 1.1 * asap.totalUsage);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlexibleProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(FlexibleWorkload, SlackFactorZeroMeansNoSlack) {
  FlexibleWorkloadSpec spec;
  spec.numJobs = 50;
  spec.slackFactor = 0.0;
  FlexibleInstance inst = generateFlexibleWorkload(spec, 1);
  for (const FlexibleJob& j : inst.jobs()) {
    EXPECT_NEAR(j.slack(), 0.0, 1e-9);
  }
}

TEST(FlexibleWorkload, RejectsInvalidSpec) {
  FlexibleWorkloadSpec spec;
  spec.slackFactor = -1;
  EXPECT_THROW(generateFlexibleWorkload(spec, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cdbp
