#include "flexible/online_flexible.hpp"

#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "flexible/flexible_scheduler.hpp"
#include "flexible/flexible_workload.hpp"

namespace cdbp {
namespace {

TEST(FlexOnlineAsap, StartsEveryJobAtRelease) {
  FlexibleInstance inst = FlexibleInstanceBuilder()
                              .add(0.5, 1, 20, 2)
                              .add(0.5, 3, 30, 4)
                              .build();
  FlexStartAsapFF policy;
  FlexOnlineResult r = simulateFlexibleOnline(inst, policy);
  EXPECT_FALSE(r.validate(inst).has_value());
  EXPECT_DOUBLE_EQ(r.starts[0], 1.0);
  EXPECT_DOUBLE_EQ(r.starts[1], 3.0);
}

TEST(FlexOnlineDeferAlign, WaitsForAZeroMarginalSlot) {
  // Anchor starts at 0 with no slack (runs to 10). The short job releases
  // at 2 with a wide window: it immediately sees the anchor's bin
  // committed to 10 >= 2 + 4, so it starts at 2 inside the paid period.
  FlexibleInstance inst = FlexibleInstanceBuilder()
                              .add(0.6, 0, 10, 10)   // anchor
                              .add(0.3, 2, 40, 4)    // flexible short job
                              .build();
  FlexDeferAlign policy;
  FlexOnlineResult r = simulateFlexibleOnline(inst, policy);
  EXPECT_FALSE(r.validate(inst).has_value());
  EXPECT_EQ(r.binsOpened, 1u);
  EXPECT_DOUBLE_EQ(r.starts[1], 2.0);
  EXPECT_DOUBLE_EQ(r.totalUsage, 10.0);
}

TEST(FlexOnlineDeferAlign, DefersWhenNoSlotAndStartsWhenForced) {
  // No open bin covers the job's length; it defers to its latest start.
  FlexibleInstance inst = FlexibleInstanceBuilder()
                              .add(0.3, 0, 12, 4)  // window [0, 8]
                              .build();
  FlexDeferAlign policy;
  FlexOnlineResult r = simulateFlexibleOnline(inst, policy);
  EXPECT_FALSE(r.validate(inst).has_value());
  EXPECT_DOUBLE_EQ(r.starts[0], 8.0);
  EXPECT_EQ(r.forcedStarts, 1u);
}

TEST(FlexOnlineDeferAlign, DeferralEnablesLaterAlignment) {
  // The short job defers past the long job's release; once the long job
  // starts (no slack), the short one aligns under it.
  FlexibleInstance inst = FlexibleInstanceBuilder()
                              .add(0.3, 0, 50, 4)    // flexible, releases first
                              .add(0.6, 5, 15, 10)   // anchor, releases later
                              .build();
  FlexDeferAlign policy;
  FlexOnlineResult r = simulateFlexibleOnline(inst, policy);
  EXPECT_FALSE(r.validate(inst).has_value());
  EXPECT_EQ(r.binsOpened, 1u);
  EXPECT_GE(r.starts[0], 5.0);           // waited for the anchor
  EXPECT_LE(r.starts[0] + 4.0, 15.0 + 1e-9);  // finished inside its span
  EXPECT_DOUBLE_EQ(r.totalUsage, 10.0);
}

TEST(FlexOnline, CapacityRespectedUnderContention) {
  // Three 0.5-jobs with overlapping forced windows: at most two share a
  // bin.
  FlexibleInstance inst = FlexibleInstanceBuilder()
                              .add(0.5, 0, 4, 4)
                              .add(0.5, 0, 4, 4)
                              .add(0.5, 0, 4, 4)
                              .build();
  FlexDeferAlign policy;
  FlexOnlineResult r = simulateFlexibleOnline(inst, policy);
  EXPECT_FALSE(r.validate(inst).has_value());
  EXPECT_EQ(r.binsOpened, 2u);
}

class FlexOnlineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlexOnlineProperty, BothPoliciesValidAndDeferAlignHelps) {
  FlexibleWorkloadSpec spec;
  spec.numJobs = 200;
  spec.slackFactor = 3.0;
  FlexibleInstance inst = generateFlexibleWorkload(spec, GetParam());
  FlexStartAsapFF asap;
  FlexDeferAlign align;
  FlexOnlineResult asapRun = simulateFlexibleOnline(inst, asap);
  FlexOnlineResult alignRun = simulateFlexibleOnline(inst, align);
  EXPECT_FALSE(asapRun.validate(inst).has_value());
  EXPECT_FALSE(alignRun.validate(inst).has_value());
  // Online defer-align is a heuristic; it must at least stay in the same
  // ballpark and usually wins on slack-heavy loads.
  EXPECT_LE(alignRun.totalUsage, 1.15 * asapRun.totalUsage);
  // And every start is within its window even under deferral.
  EXPECT_GE(lowerBounds(*alignRun.fixedInstance).ceilIntegral, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlexOnlineProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(FlexOnline, OfflineAlignedBeatsOnlineOnAverage) {
  FlexibleWorkloadSpec spec;
  spec.numJobs = 300;
  spec.slackFactor = 2.0;
  double onlineTotal = 0, offlineTotal = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    FlexibleInstance inst = generateFlexibleWorkload(spec, seed);
    FlexDeferAlign align;
    onlineTotal += simulateFlexibleOnline(inst, align).totalUsage;
    offlineTotal += scheduleAligned(inst).totalUsage;
  }
  // Full lookahead should not lose to the online heuristic in aggregate.
  EXPECT_LE(offlineTotal, 1.05 * onlineTotal);
}

}  // namespace
}  // namespace cdbp
