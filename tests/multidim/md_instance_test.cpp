#include "multidim/md_instance.hpp"

#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "multidim/md_lower_bounds.hpp"
#include "multidim/md_packing.hpp"

namespace cdbp {
namespace {

MdInstance twoDimInstance() {
  return MdInstanceBuilder()
      .add({0.5, 0.2}, 0, 4)
      .add({0.3, 0.6}, 1, 3)
      .add({0.1, 0.1}, 6, 8)
      .build();
}

TEST(MdInstance, ValidatesDimensionConsistency) {
  EXPECT_THROW(MdInstanceBuilder()
                   .add({0.5, 0.2}, 0, 1)
                   .add({0.5}, 0, 1)
                   .build(),
               InstanceError);
}

TEST(MdInstance, RejectsOutOfRangeCoordinates) {
  EXPECT_THROW(MdInstanceBuilder().add({1.5, 0.2}, 0, 1).build(), InstanceError);
  EXPECT_THROW(MdInstanceBuilder().add({-0.1, 0.2}, 0, 1).build(), InstanceError);
}

TEST(MdInstance, RejectsAllZeroDemand) {
  EXPECT_THROW(MdInstanceBuilder().add({0.0, 0.0}, 0, 1).build(), InstanceError);
}

TEST(MdInstance, AcceptsZeroInSomeDimensions) {
  MdInstance inst = MdInstanceBuilder().add({0.0, 0.5}, 0, 1).build();
  EXPECT_EQ(inst.size(), 1u);
}

TEST(MdInstance, RejectsInvalidInterval) {
  EXPECT_THROW(MdInstanceBuilder().add({0.5, 0.5}, 2, 2).build(), InstanceError);
}

TEST(MdInstance, DimensionProfiles) {
  MdInstance inst = twoDimInstance();
  StepFunction d0 = inst.dimensionProfile(0);
  StepFunction d1 = inst.dimensionProfile(1);
  EXPECT_DOUBLE_EQ(d0.valueAt(2), 0.8);
  EXPECT_DOUBLE_EQ(d1.valueAt(2), 0.8);
  EXPECT_DOUBLE_EQ(d0.valueAt(3.5), 0.5);
  EXPECT_DOUBLE_EQ(d1.valueAt(3.5), 0.2);
}

TEST(MdInstance, SpanAndDurations) {
  MdInstance inst = twoDimInstance();
  EXPECT_DOUBLE_EQ(inst.span(), 4.0 + 2.0);
  EXPECT_DOUBLE_EQ(inst.minDuration(), 2.0);
  EXPECT_DOUBLE_EQ(inst.durationRatio(), 2.0);
}

TEST(MdLowerBounds, TakesMaxOverDimensions) {
  // Dim 0 is the bottleneck: three 0.6 items overlap; dim 1 is tiny.
  MdInstance inst = MdInstanceBuilder()
                        .add({0.6, 0.1}, 0, 1)
                        .add({0.6, 0.1}, 0, 1)
                        .add({0.6, 0.1}, 0, 1)
                        .build();
  MdLowerBounds lb = mdLowerBounds(inst);
  EXPECT_DOUBLE_EQ(lb.ceilIntegral, 2.0);  // ceil(1.8) = 2 bins for 1 unit
  EXPECT_DOUBLE_EQ(lb.span, 1.0);
  EXPECT_NEAR(lb.demand, 1.8, 1e-12);
  EXPECT_DOUBLE_EQ(lb.best(), 2.0);
}

TEST(MdPacking, UsageAndValidation) {
  MdInstance inst = twoDimInstance();
  MdPacking packing(inst, {0, 1, 0});
  EXPECT_DOUBLE_EQ(packing.binUsage(0), 4.0 + 2.0);
  EXPECT_DOUBLE_EQ(packing.binUsage(1), 2.0);
  EXPECT_DOUBLE_EQ(packing.totalUsage(), 8.0);
  EXPECT_FALSE(packing.validate().has_value());
}

TEST(MdPacking, DetectsPerDimensionOverflow) {
  // Items fit in dim 0 (0.5 + 0.3) but overflow dim 1 (0.6 + 0.6).
  MdInstance inst = MdInstanceBuilder()
                        .add({0.5, 0.6}, 0, 2)
                        .add({0.3, 0.6}, 0, 2)
                        .build();
  MdPacking packing(inst, {0, 0});
  auto error = packing.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("dimension 1"), std::string::npos);
}

TEST(MdPacking, OpenBinsAt) {
  MdInstance inst = twoDimInstance();
  MdPacking packing(inst, {0, 1, 0});
  EXPECT_EQ(packing.openBinsAt(2.0), 2u);
  EXPECT_EQ(packing.openBinsAt(5.0), 0u);
  EXPECT_EQ(packing.openBinsAt(7.0), 1u);
}

}  // namespace
}  // namespace cdbp
