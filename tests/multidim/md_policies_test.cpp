#include "multidim/md_policies.hpp"

#include <gtest/gtest.h>

#include "multidim/md_lower_bounds.hpp"
#include "multidim/md_workload.hpp"

namespace cdbp {
namespace {

MdClassifyPolicy firstFit() {
  return MdClassifyPolicy({MdFitRule::kFirstFit, MdCategoryRule::kNone, 1, 1, 2});
}

TEST(MdFirstFit, RespectsEveryDimension) {
  // Items fit in dim 0 but clash in dim 1 -> two bins.
  MdInstance inst = MdInstanceBuilder()
                        .add({0.2, 0.7}, 0, 2)
                        .add({0.2, 0.7}, 0, 2)
                        .build();
  MdClassifyPolicy policy = firstFit();
  MdSimResult r = mdSimulateOnline(inst, policy);
  EXPECT_EQ(r.binsOpened, 2u);
  EXPECT_FALSE(r.packing.validate().has_value());
}

TEST(MdFirstFit, SharesWhenAllDimensionsFit) {
  MdInstance inst = MdInstanceBuilder()
                        .add({0.4, 0.3}, 0, 2)
                        .add({0.5, 0.6}, 0, 2)
                        .build();
  MdClassifyPolicy policy = firstFit();
  MdSimResult r = mdSimulateOnline(inst, policy);
  EXPECT_EQ(r.binsOpened, 1u);
  EXPECT_DOUBLE_EQ(r.totalUsage, 2.0);
}

TEST(MdDominantFit, BalancesDimensions) {
  // Two open bins: bin0 high in dim0, bin1 high in dim1. A dim0-heavy item
  // should go to bin1 under dominant fit.
  MdInstance inst = MdInstanceBuilder()
                        .add({0.6, 0.1}, 0, 10)    // bin0
                        .add({0.1, 0.6}, 0.1, 10)  // bin1 under FF? fits bin0...
                        .add({0.3, 0.1}, 0.2, 10)  // the probe item
                        .build();
  // Under dominant fit: item1 ({0.1,0.6}) joins bin0? After-levels:
  // bin0+item1 = {0.7,0.7} max 0.7; new bin = {0.1,0.6} max 0.6 — but
  // dominant fit only picks among EXISTING fitting bins; {0.7,0.7} fits,
  // so item1 joins bin0. Then item2 {0.3,0.1}: bin0 after = {1.0,0.8} max
  // 1.0 — fits exactly. Only one bin exists, so it lands there.
  MdClassifyPolicy policy(
      {MdFitRule::kDominantFit, MdCategoryRule::kNone, 1, 1, 2});
  MdSimResult r = mdSimulateOnline(inst, policy);
  EXPECT_FALSE(r.packing.validate().has_value());
  EXPECT_EQ(r.binsOpened, 1u);
}

TEST(MdDominantFit, PicksBinWithSmallestPostPlacementPeak) {
  MdInstance probe = MdInstanceBuilder()
                         .add({0.8, 0.1}, 0.0, 10)  // bin0 (dim0-heavy)
                         .add({0.3, 0.8}, 0.1, 10)  // doesn't fit bin0: bin1
                         .add({0.1, 0.05}, 0.2, 10)  // fits both
                         .build();
  MdClassifyPolicy policy(
      {MdFitRule::kDominantFit, MdCategoryRule::kNone, 1, 1, 2});
  MdSimResult r = mdSimulateOnline(probe, policy);
  // bin0 after = {0.9, 0.15}, peak 0.9; bin1 after = {0.4, 0.85}, peak
  // 0.85: dominant fit picks bin1 (First Fit would pick bin0).
  EXPECT_EQ(r.packing.binOf(2), 1);
  EXPECT_FALSE(r.packing.validate().has_value());
}

TEST(MdClassify, DepartureWindowsSeparate) {
  MdInstance inst = MdInstanceBuilder()
                        .add({0.1, 0.1}, 0, 0.5)
                        .add({0.1, 0.1}, 0, 1.7)
                        .build();
  MdClassifyPolicy policy(
      {MdFitRule::kFirstFit, MdCategoryRule::kDeparture, 1.0, 1, 2});
  MdSimResult r = mdSimulateOnline(inst, policy);
  EXPECT_EQ(r.binsOpened, 2u);
}

TEST(MdClassify, DurationClassesSeparate) {
  MdInstance inst = MdInstanceBuilder()
                        .add({0.1, 0.1}, 0, 1.5)
                        .add({0.1, 0.1}, 0, 3.0)
                        .build();
  MdClassifyPolicy policy(
      {MdFitRule::kFirstFit, MdCategoryRule::kDuration, 1.0, 1.0, 2.0});
  MdSimResult r = mdSimulateOnline(inst, policy);
  EXPECT_EQ(r.binsOpened, 2u);
}

TEST(MdClassify, InvalidConfigThrows) {
  EXPECT_THROW(MdClassifyPolicy(
                   {MdFitRule::kFirstFit, MdCategoryRule::kDeparture, 0, 1, 2}),
               std::invalid_argument);
  EXPECT_THROW(MdClassifyPolicy(
                   {MdFitRule::kFirstFit, MdCategoryRule::kDuration, 1, 0, 2}),
               std::invalid_argument);
  EXPECT_THROW(MdClassifyPolicy(
                   {MdFitRule::kFirstFit, MdCategoryRule::kDuration, 1, 1, 1}),
               std::invalid_argument);
}

TEST(MdSimulator, BinsCloseOnEmptyAndNeverReopen) {
  MdInstance inst = MdInstanceBuilder()
                        .add({1.0, 1.0}, 0, 1)
                        .add({1.0, 1.0}, 1, 2)
                        .build();
  MdClassifyPolicy policy = firstFit();
  MdSimResult r = mdSimulateOnline(inst, policy);
  EXPECT_EQ(r.binsOpened, 2u);
  EXPECT_DOUBLE_EQ(r.totalUsage, 2.0);
}

class MdPolicyProperty
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(MdPolicyProperty, FeasibleAndAboveLowerBound) {
  auto [fitIdx, catIdx, seed] = GetParam();
  MdWorkloadSpec spec;
  spec.numItems = 300;
  spec.dims = 3;
  MdInstance inst = generateMdWorkload(spec, seed);
  MdClassifyPolicy::Config config;
  config.fit = fitIdx == 0 ? MdFitRule::kFirstFit : MdFitRule::kDominantFit;
  config.categories = catIdx == 0   ? MdCategoryRule::kNone
                      : catIdx == 1 ? MdCategoryRule::kDeparture
                                    : MdCategoryRule::kDuration;
  config.rho = 4.0;
  config.base = inst.minDuration();
  config.alpha = 2.0;
  MdClassifyPolicy policy(config);
  MdSimResult r = mdSimulateOnline(inst, policy);
  EXPECT_FALSE(r.packing.validate().has_value()) << policy.name();
  EXPECT_GE(r.totalUsage + 1e-6, mdLowerBounds(inst).ceilIntegral);
}

INSTANTIATE_TEST_SUITE_P(Grid, MdPolicyProperty,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace cdbp
