#include "multidim/md_workload.hpp"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(MdWorkload, DeterministicUnderSeed) {
  MdWorkloadSpec spec;
  spec.numItems = 50;
  MdInstance a = generateMdWorkload(spec, 5);
  MdInstance b = generateMdWorkload(spec, 5);
  ASSERT_EQ(a.size(), b.size());
  for (ItemId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].demand, b[i].demand);
    EXPECT_EQ(a[i].interval, b[i].interval);
  }
}

TEST(MdWorkload, RespectsDimsAndRanges) {
  MdWorkloadSpec spec;
  spec.numItems = 200;
  spec.dims = 4;
  spec.minCoordinate = 0.1;
  spec.maxCoordinate = 0.5;
  MdInstance inst = generateMdWorkload(spec, 2);
  EXPECT_EQ(inst.dims(), 4u);
  for (const MdItem& r : inst.items()) {
    ASSERT_EQ(r.demand.dims(), 4u);
    for (double v : r.demand.values()) {
      EXPECT_GE(v, spec.minCoordinate - 1e-12);
      EXPECT_LE(v, spec.maxCoordinate + 1e-12);
    }
    EXPECT_GE(r.duration(), spec.minDuration - 1e-12);
    EXPECT_LE(r.duration(), spec.mu * spec.minDuration + 1e-12);
  }
}

TEST(MdWorkload, FullCorrelationMakesCoordinatesEqual) {
  MdWorkloadSpec spec;
  spec.numItems = 100;
  spec.correlation = 1.0;
  MdInstance inst = generateMdWorkload(spec, 3);
  for (const MdItem& r : inst.items()) {
    EXPECT_NEAR(r.demand[0], r.demand[1], 1e-12);
  }
}

TEST(MdWorkload, ZeroCorrelationDecouplesCoordinates) {
  MdWorkloadSpec spec;
  spec.numItems = 500;
  spec.correlation = 0.0;
  MdInstance inst = generateMdWorkload(spec, 4);
  // Empirical correlation between dims should be near zero.
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  double n = static_cast<double>(inst.size());
  for (const MdItem& r : inst.items()) {
    double x = r.demand[0];
    double y = r.demand[1];
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  double corr = (n * sxy - sx * sy) /
                std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  EXPECT_LT(std::fabs(corr), 0.15);
}

TEST(MdWorkload, RejectsInvalidSpecs) {
  MdWorkloadSpec spec;
  spec.dims = 0;
  EXPECT_THROW(generateMdWorkload(spec, 1), std::invalid_argument);
  spec = {};
  spec.correlation = 1.5;
  EXPECT_THROW(generateMdWorkload(spec, 1), std::invalid_argument);
  spec = {};
  spec.maxCoordinate = 1.2;
  EXPECT_THROW(generateMdWorkload(spec, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cdbp
