#include "multidim/resources.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cdbp {
namespace {

TEST(Resources, ArithmeticIsElementwise) {
  Resources a{0.2, 0.5};
  Resources b{0.1, 0.3};
  Resources sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 0.3);
  EXPECT_DOUBLE_EQ(sum[1], 0.8);
  Resources diff = sum - b;
  EXPECT_DOUBLE_EQ(diff[0], 0.2);
  EXPECT_DOUBLE_EQ(diff[1], 0.5);
}

TEST(Resources, DimensionMismatchThrows) {
  Resources a{0.2, 0.5};
  Resources b{0.1};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a.fitsWith(b), std::invalid_argument);
}

TEST(Resources, FitsWithRequiresEveryDimension) {
  Resources level{0.5, 0.9};
  EXPECT_TRUE(level.fitsWith({0.5, 0.1}));
  EXPECT_FALSE(level.fitsWith({0.5, 0.2}));   // dim 1 overflows
  EXPECT_FALSE(level.fitsWith({0.6, 0.05}));  // dim 0 overflows
}

TEST(Resources, ZeroFactory) {
  Resources z = Resources::zero(3);
  EXPECT_EQ(z.dims(), 3u);
  EXPECT_DOUBLE_EQ(z.sum(), 0.0);
  EXPECT_TRUE(z.fitsWith({1.0, 1.0, 1.0}));
}

TEST(Resources, DominantCoordinate) {
  Resources r{0.2, 0.7, 0.4};
  EXPECT_DOUBLE_EQ(r.maxCoordinate(), 0.7);
  EXPECT_EQ(r.dominantDimension(), 1u);
  EXPECT_DOUBLE_EQ(r.sum(), 1.3);
}

TEST(Resources, EqualityAndStreaming) {
  Resources a{0.25, 0.5};
  Resources b{0.25, 0.5};
  EXPECT_EQ(a, b);
  std::ostringstream os;
  os << a;
  EXPECT_EQ(os.str(), "(0.25, 0.5)");
}

}  // namespace
}  // namespace cdbp
