// Nightly-scale sharded ≡ single-pool battery (ctest label: slow).
//
// The tier-1 battery (integration/sharded_differential_test.cpp) pins the
// epoch-sharded engine bit-identical to the single-pool engines on small
// instances. This suite re-proves it at the scales where epoch handovers,
// buffer recycling and cross-shard merge pileups actually occur —
// thousands of items per shard, bursty fronts — and replays a million-job
// workload through the sharded stream dispatch against the indexed
// oracle. Excluded from the default ctest run (-LE slow).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "online/policy_factory.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "sim/streaming.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

const std::vector<std::string>& allSpecs() {
  static const std::vector<std::string> specs = {
      "ff",     "bf",    "wf",          "nf",      "rf(seed=7)",
      "hybrid-ff", "cdt-ff", "cd-ff",   "combined-ff", "min-ext",
      "dep-bf"};
  return specs;
}

void expectShardedEquivalence(const Instance& inst, const std::string& label) {
  Instance canonical(inst.sortedByArrival());
  PolicyContext context = PolicyContext::forInstance(canonical);

  for (const std::string& spec : allSpecs()) {
    PolicyPtr indexedPolicy = makePolicy(spec, context);
    SimResult indexed = simulateOnline(canonical, *indexedPolicy);

    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      SCOPED_TRACE(label + " / " + spec + " / t" + std::to_string(threads));
      PolicyPtr policy = makePolicy(spec, context);
      ShardedOptions options;
      options.threads = threads;
      // Small epochs at this scale: thousands of handovers per run.
      options.epochArrivals = 256;
      options.capturePlacements = true;
      ShardedSimulator sim(*policy, options);
      for (const Item& r : canonical.sortedByArrival()) sim.feed(r);
      ShardedResult sharded = sim.finish();

      EXPECT_EQ(sharded.totalUsage, indexed.totalUsage);
      EXPECT_EQ(sharded.binsOpened, indexed.binsOpened);
      EXPECT_EQ(sharded.maxOpenBins, indexed.maxOpenBins);
      EXPECT_EQ(sharded.categoriesUsed, indexed.categoriesUsed);
      ASSERT_EQ(sharded.binOf.size(), canonical.size());
      for (std::size_t i = 0; i < canonical.size(); ++i) {
        ASSERT_EQ(sharded.binOf[i],
                  indexed.packing.binOf(static_cast<ItemId>(i)))
            << "item " << i;
      }
    }
  }
}

TEST(ShardedNightly, LargeRandomGrid) {
  for (double mu : {8.0, 64.0}) {
    for (double rate : {4.0, 64.0}) {
      WorkloadSpec spec;
      spec.numItems = 2000;
      spec.mu = mu;
      spec.arrivalRate = rate;
      Instance inst = generateWorkload(spec, 2);
      expectShardedEquivalence(
          inst, "mu=" + std::to_string(mu) + " rate=" + std::to_string(rate));
    }
  }
}

TEST(ShardedNightly, HeavyTailedAndBursty) {
  WorkloadSpec spec;
  spec.numItems = 1500;
  spec.mu = 64.0;
  spec.durations = DurationDist::kPareto;
  spec.arrivals = ArrivalProcess::kBursty;
  spec.burstSize = 16;
  Instance inst = generateWorkload(spec, 23);
  expectShardedEquivalence(inst, "heavy-tailed");
}

TEST(ShardedNightly, MillionJobShardedReplayMatchesIndexed) {
  // The tentpole's scale claim, functionally: a million-job flat replay
  // through the sharded dispatch agrees with the indexed stream on every
  // aggregate (the full per-item pin runs on the smaller grids above).
  WorkloadSpec spec;
  spec.numItems = 1000000;
  spec.mu = 16.0;
  Instance inst = generateWorkload(spec, 99);
  Instance canonical(inst.sortedByArrival());
  PolicyContext context = PolicyContext::forInstance(canonical);

  PolicyPtr indexedPolicy = makePolicy("cdt-ff", context);
  InstanceArrivalSource indexedSource(canonical);
  StreamResult indexed = simulateStream(indexedSource, *indexedPolicy);

  PolicyPtr shardedPolicy = makePolicy("cdt-ff", context);
  StreamOptions options;
  options.engine = PlacementEngine::kSharded;
  options.shardedThreads = 4;
  InstanceArrivalSource shardedSource(canonical);
  StreamResult sharded = simulateStream(shardedSource, *shardedPolicy, options);

  ASSERT_EQ(sharded.items, 1000000u);
  EXPECT_EQ(sharded.totalUsage, indexed.totalUsage);
  EXPECT_EQ(sharded.binsOpened, indexed.binsOpened);
  EXPECT_EQ(sharded.maxOpenBins, indexed.maxOpenBins);
  EXPECT_EQ(sharded.categoriesUsed, indexed.categoriesUsed);
  EXPECT_EQ(sharded.lb3, indexed.lb3);
  EXPECT_EQ(sharded.peakOpenItems, indexed.peakOpenItems);
}

}  // namespace
}  // namespace cdbp
