// Nightly-scale streaming ≡ batch battery (ctest label: slow).
//
// The tier-1 battery (integration/streaming_differential_test.cpp) crosses
// every (spec, engine, source) on small instances. This suite re-proves the
// same bit-identity at the scales where rare event collisions actually
// occur — thousands of items, equal-departure pileups, bursty arrival
// fronts — and exercises the bounded-memory claim on a million-item
// exported trace. Excluded from the default ctest run (-LE slow); CI runs
// it in the nightly-differential job under asan-ubsan.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "online/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "sim/streaming.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/adversarial.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace cdbp {
namespace {

const std::vector<std::string>& allSpecs() {
  static const std::vector<std::string> specs = {
      "ff",     "bf",    "wf",          "nf",      "rf(seed=7)",
      "hybrid-ff", "cdt-ff", "cd-ff",   "combined-ff", "min-ext",
      "dep-bf"};
  return specs;
}

std::uint64_t fitChecks() {
  return telemetry::Registry::global().counter("sim.fit_checks").value();
}

void expectStreamEquivalence(const Instance& inst, const std::string& label,
                             bool includeTraceFiles) {
  Instance canonical(inst.sortedByArrival());
  PolicyContext context = PolicyContext::forInstance(canonical);

  for (PlacementEngine engine :
       {PlacementEngine::kIndexed, PlacementEngine::kLinearScan}) {
    const char* engineName =
        engine == PlacementEngine::kIndexed ? "indexed" : "linear";
    for (const std::string& spec : allSpecs()) {
      SCOPED_TRACE(label + " / " + spec + " / " + engineName);

      PolicyPtr batchPolicy = makePolicy(spec, context);
      SimOptions batchOptions;
      batchOptions.engine = engine;
      std::uint64_t batchBefore = fitChecks();
      SimResult batch = simulateOnline(canonical, *batchPolicy, batchOptions);
      std::uint64_t batchChecks = fitChecks() - batchBefore;

      auto check = [&](ArrivalSource& source) {
        PolicyPtr policy = makePolicy(spec, context);
        StreamOptions options;
        options.engine = engine;
        options.computeLowerBound = false;
        std::vector<BinId> bins;
        options.onPlacement = [&bins](ItemId /*id*/, BinId bin,
                                      bool /*newBin*/, int /*category*/) {
          bins.push_back(bin);
        };
        std::uint64_t before = fitChecks();
        StreamResult streamed = simulateStream(source, *policy, options);
        std::uint64_t streamChecks = fitChecks() - before;

        EXPECT_EQ(streamed.totalUsage, batch.totalUsage);
        EXPECT_EQ(streamed.binsOpened, batch.binsOpened);
        EXPECT_EQ(streamed.maxOpenBins, batch.maxOpenBins);
        EXPECT_EQ(streamed.categoriesUsed, batch.categoriesUsed);
        ASSERT_EQ(bins.size(), canonical.size());
        for (std::size_t i = 0; i < bins.size(); ++i) {
          ASSERT_EQ(bins[i], batch.packing.binOf(static_cast<ItemId>(i)))
              << "item " << i;
        }
        if (telemetry::kEnabled) {
          EXPECT_EQ(streamChecks, batchChecks);
        }
      };

      InstanceArrivalSource memorySource(canonical);
      check(memorySource);

      if (!includeTraceFiles) continue;
      for (TraceFormat format : {TraceFormat::kCsv, TraceFormat::kJsonl}) {
        std::stringstream buffer;
        writeTrace(canonical, buffer, format);
        TraceArrivalSource fileSource(buffer, format,
                                      traceFormatName(format));
        SCOPED_TRACE("via " + traceFormatName(format));
        check(fileSource);
      }
    }
  }
}

TEST(NightlyDifferential, LargeRandomGrid) {
  for (double mu : {1.0, 8.0, 64.0}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      for (double rate : {4.0, 64.0}) {
        WorkloadSpec spec;
        spec.numItems = 2000;
        spec.mu = mu;
        spec.arrivalRate = rate;
        Instance inst = generateWorkload(spec, seed);
        expectStreamEquivalence(
            inst,
            "mu=" + std::to_string(mu) + " seed=" + std::to_string(seed) +
                " rate=" + std::to_string(rate),
            seed == 1u && rate == 4.0);
      }
    }
  }
}

TEST(NightlyDifferential, HeavyTailedAndBursty) {
  for (DurationDist dist :
       {DurationDist::kPareto, DurationDist::kBimodal}) {
    WorkloadSpec spec;
    spec.numItems = 1500;
    spec.mu = 64.0;
    spec.durations = dist;
    spec.arrivals = ArrivalProcess::kBursty;
    spec.burstSize = 16;
    Instance inst = generateWorkload(spec, 23);
    expectStreamEquivalence(inst, "heavy-tailed", true);
  }
}

TEST(NightlyDifferential, LargeAdversarialTrap) {
  Instance inst = firstFitSliverTrap(64, 32.0);
  expectStreamEquivalence(inst, "large-sliver-trap", true);
}

TEST(NightlyDifferential, MillionItemTraceStreamsBounded) {
  // The headline memory claim at full scale: export a 1M-item trace and
  // stream it back through First Fit. Peak simultaneously-open items must
  // sit orders of magnitude below the item count — the stream never holds
  // the workload.
  namespace fs = std::filesystem;
  WorkloadSpec spec;
  spec.numItems = 1000000;
  spec.mu = 16.0;
  Instance inst = generateWorkload(spec, 99);
  fs::path path = fs::temp_directory_path() / "cdbp_nightly_1m.jsonl";
  saveTrace(inst, path.string(), "nightly 1M stream test");

  PolicyContext context = PolicyContext::forInstance(inst);
  PolicyPtr policy = makePolicy("ff", context);
  TraceArrivalSource source(path.string());
  StreamResult result = simulateStream(source, *policy);
  fs::remove(path);

  ASSERT_EQ(result.items, 1000000u);
  EXPECT_LT(result.peakOpenItems * 100, result.items)
      << "peak open items " << result.peakOpenItems;
  // Batch agreement at scale, on the aggregate: the full per-item pin runs
  // on the smaller grids above.
  SimResult batch = simulateOnline(Instance(inst.sortedByArrival()), *policy);
  EXPECT_EQ(result.totalUsage, batch.totalUsage);
  EXPECT_EQ(result.binsOpened, batch.binsOpened);
}

}  // namespace
}  // namespace cdbp
