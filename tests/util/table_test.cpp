#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cdbp {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"mu", "ratio"});
  table.addRow({"1", "5.0"});
  table.addRow({"100", "23.0"});
  std::ostringstream os;
  table.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("mu"), std::string::npos);
  EXPECT_NE(out.find("23.0"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table table({"a", "b"});
  EXPECT_THROW(table.addRow({"only one"}), std::invalid_argument);
}

TEST(Table, NumFormatsWithPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(1.0 / 3.0, 4), "0.3333");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"name", "value"});
  table.addRow({"has,comma", "has\"quote"});
  std::ostringstream os;
  table.printCsv(os);
  std::string out = os.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table table({"a"});
  table.addRow({"plain"});
  std::ostringstream os;
  table.printCsv(os);
  EXPECT_EQ(os.str(), "a\nplain\n");
}

TEST(Table, TracksRowCount) {
  Table table({"x"});
  EXPECT_EQ(table.numRows(), 0u);
  table.addRow({"1"});
  table.addRow({"2"});
  EXPECT_EQ(table.numRows(), 2u);
  EXPECT_EQ(table.rows()[1][0], "2");
}

}  // namespace
}  // namespace cdbp
