#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(SummaryStats, EmptyIsAllZero) {
  SummaryStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(SummaryStats, MeanAndSum) {
  SummaryStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_EQ(s.count(), 4u);
}

TEST(SummaryStats, SampleVariance) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  // Known dataset: sample variance 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SummaryStats, MinMax) {
  SummaryStats s;
  for (double x : {3.0, -1.0, 7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(SummaryStats, PercentilesInterpolate) {
  SummaryStats s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(SummaryStats, SingleSample) {
  SummaryStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

}  // namespace
}  // namespace cdbp
