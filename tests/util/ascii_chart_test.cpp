#include "util/ascii_chart.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cdbp {
namespace {

TEST(AsciiChart, RendersSeriesGlyphsAndLegend) {
  AsciiChart chart(40, 10);
  chart.addSeries("linear", {1, 2, 3, 4}, {1, 2, 3, 4});
  chart.addSeries("flat", {1, 2, 3, 4}, {2, 2, 2, 2});
  std::ostringstream os;
  chart.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find("linear"), std::string::npos);
  EXPECT_NE(out.find("flat"), std::string::npos);
}

TEST(AsciiChart, RejectsMismatchedSeries) {
  AsciiChart chart;
  EXPECT_THROW(chart.addSeries("bad", {1, 2}, {1}), std::invalid_argument);
}

TEST(AsciiChart, RejectsTinyPlotArea) {
  EXPECT_THROW(AsciiChart(5, 2), std::invalid_argument);
}

TEST(AsciiChart, LogXHandlesWideRanges) {
  AsciiChart chart(40, 8);
  chart.setLogX(true);
  chart.addSeries("sweep", {1, 10, 100, 1000}, {1, 2, 3, 4});
  std::ostringstream os;
  chart.print(os);
  EXPECT_NE(os.str().find("(log x)"), std::string::npos);
}

TEST(AsciiChart, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart chart(30, 6);
  chart.addSeries("const", {5}, {7});
  std::ostringstream os;
  EXPECT_NO_THROW(chart.print(os));
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

}  // namespace
}  // namespace cdbp
