#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cdbp {
namespace {

int sideEffects = 0;
bool bumpAndReturnFalse() {
  ++sideEffects;
  return false;
}

TEST(CdbpCheck, PassingConditionIsSilent) {
  CDBP_CHECK(1 + 1 == 2);
  CDBP_CHECK(true, "message is not evaluated on success");
  SUCCEED();
}

// Death tests fork; the threadsafe style re-executes the binary so they stay
// valid even when other tests have spawned ThreadPool workers.
class CdbpCheckDeathTest : public testing::Test {
 protected:
  CdbpCheckDeathTest() {
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(CdbpCheckDeathTest, FailureAbortsWithExpressionAndLocation) {
  EXPECT_DEATH(CDBP_CHECK(2 + 2 == 5), "CDBP_CHECK failed: 2 \\+ 2 == 5");
  EXPECT_DEATH(CDBP_CHECK(false), "check_test\\.cpp");
}

TEST_F(CdbpCheckDeathTest, MessageArgumentsAreStreamedIntoTheReport) {
  int bin = 7;
  double level = 1.25;
  EXPECT_DEATH(CDBP_CHECK(level < 1.2, "bin ", bin, " at level ", level),
               "bin 7 at level 1.25");
}

TEST_F(CdbpCheckDeathTest, UnreachableAlwaysAborts) {
  EXPECT_DEATH(CDBP_UNREACHABLE("corrupt category ", 3),
               "CDBP_UNREACHABLE.*corrupt category 3");
}

// The Release/Debug split is the contract: CDBP_DCHECK must vanish (condition
// unevaluated) under NDEBUG and behave like CDBP_CHECK otherwise. This test
// is meaningful in both configurations and is exercised under every preset.
TEST(CdbpDcheck, ConditionEvaluationMatchesBuildType) {
  sideEffects = 0;
#ifdef NDEBUG
  CDBP_DCHECK(bumpAndReturnFalse(), "never reached in Release");
  EXPECT_EQ(sideEffects, 0) << "CDBP_DCHECK evaluated its condition in Release";
#else
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CDBP_DCHECK(bumpAndReturnFalse(), "fails in Debug"),
               "CDBP_DCHECK failed");
  CDBP_DCHECK(true);
#endif
}

TEST(CdbpCheck, FormatterConcatenatesHeterogeneousArguments) {
  EXPECT_EQ(detail::formatCheckMessage(), "");
  EXPECT_EQ(detail::formatCheckMessage("bin ", 3, " level ", 0.5),
            "bin 3 level 0.5");
  EXPECT_EQ(detail::formatCheckMessage(std::string("x")), "x");
}

}  // namespace
}  // namespace cdbp
