#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(Rng, Uniform01InRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.uniformInt(2, 5);
    EXPECT_GE(v, 2u);
    EXPECT_LE(v, 5u);
    sawLo |= (v == 2);
    sawHi |= (v == 5);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(4);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, LogNormalIsPositive) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.logNormal(0.0, 1.0), 0.0);
}

TEST(Rng, ChanceFrequencyMatchesP) {
  Rng rng(8);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkDecorrelatesStreams) {
  Rng parent(9);
  Rng child = parent.fork();
  // The child stream must differ from a fresh continuation of the parent.
  bool anyDifferent = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.uniform01() != child.uniform01()) anyDifferent = true;
  }
  EXPECT_TRUE(anyDifferent);
}

}  // namespace
}  // namespace cdbp
