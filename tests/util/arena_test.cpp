#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace cdbp {
namespace {

TEST(MonotonicArena, HandsOutDistinctAlignedStorage) {
  MonotonicArena arena;
  double* doubles = arena.allocate<double>(8);
  std::uint8_t* bytes = arena.allocate<std::uint8_t>(3);
  std::uint64_t* words = arena.allocate<std::uint64_t>(4);
  ASSERT_NE(doubles, nullptr);
  ASSERT_NE(bytes, nullptr);
  ASSERT_NE(words, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words) % alignof(std::uint64_t),
            0u);

  // Writes land without trampling each other (asan would flag overlap or
  // out-of-bounds).
  for (int i = 0; i < 8; ++i) doubles[i] = i * 0.5;
  for (int i = 0; i < 3; ++i) bytes[i] = static_cast<std::uint8_t>(i);
  for (int i = 0; i < 4; ++i) words[i] = 0xABCDULL + static_cast<std::uint64_t>(i);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(doubles[i], i * 0.5);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(bytes[i], i);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(words[i], 0xABCDULL + static_cast<std::uint64_t>(i));
  }

  EXPECT_GE(arena.bytesUsed(), 8 * sizeof(double) + 3 + 4 * sizeof(std::uint64_t));
  EXPECT_GE(arena.bytesReserved(), arena.bytesUsed());
}

TEST(MonotonicArena, ZeroCountReturnsNonNull) {
  MonotonicArena arena;
  EXPECT_NE(arena.allocate<double>(0), nullptr);
}

TEST(MonotonicArena, OverflowChunksKeepEarlierContentsLive) {
  // Small chunk granularity: the second allocation opens a fresh bump
  // chunk, and the first allocation's bytes must survive untouched until
  // reset() — the property the epoch packer relies on when one epoch's
  // slices span chunks.
  MonotonicArena arena(/*chunkBytes=*/64);
  std::uint8_t* first = arena.allocate<std::uint8_t>(48);
  std::memset(first, 0x5A, 48);
  std::uint8_t* big = arena.allocate<std::uint8_t>(1024);  // dedicated chunk
  std::memset(big, 0xA5, 1024);
  std::uint8_t* third = arena.allocate<std::uint8_t>(40);
  std::memset(third, 0x3C, 40);
  for (int i = 0; i < 48; ++i) ASSERT_EQ(first[i], 0x5A) << i;
  for (int i = 0; i < 1024; ++i) ASSERT_EQ(big[i], 0xA5) << i;
  for (int i = 0; i < 40; ++i) ASSERT_EQ(third[i], 0x3C) << i;
  EXPECT_EQ(arena.bytesUsed(), 48u + 1024u + 40u);
}

TEST(MonotonicArena, ResetKeepsLargestChunkAndRewindsCounters) {
  MonotonicArena arena(/*chunkBytes=*/64);
  arena.allocate<std::uint8_t>(32);
  arena.allocate<std::uint8_t>(4096);  // largest chunk
  arena.allocate<std::uint8_t>(32);
  std::size_t reservedBefore = arena.bytesReserved();
  EXPECT_GE(reservedBefore, 4096u);

  arena.reset();
  EXPECT_EQ(arena.bytesUsed(), 0u);
  // Only the 4096-byte chunk survives the reset.
  EXPECT_EQ(arena.bytesReserved(), 4096u);

  // Steady state: a same-shaped epoch refills without growing the arena.
  std::uint8_t* p = arena.allocate<std::uint8_t>(4000);
  std::memset(p, 1, 4000);
  EXPECT_EQ(arena.bytesReserved(), 4096u);
  EXPECT_EQ(arena.bytesUsed(), 4000u);
}

TEST(MonotonicArena, ReusesRewoundStorageAcrossEpochs) {
  MonotonicArena arena(/*chunkBytes=*/1 << 12);
  std::vector<void*> firstEpoch;
  for (int i = 0; i < 8; ++i) firstEpoch.push_back(arena.allocate<double>(16));
  arena.reset();
  // The same request pattern lands on the same storage: zero allocator
  // traffic in steady state.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(arena.allocate<double>(16), firstEpoch[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace cdbp
