#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace cdbp {
namespace {

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, DefaultPicksAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, EachIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallelFor(pool, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ZeroCountIsNoOp) {
  ThreadPool pool(2);
  bool touched = false;
  parallelFor(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, TasksMaySubmitFollowUpWorkObservedByWait) {
  // wait() must cover tasks submitted by running tasks (each parent submits
  // its child before completing, so the in-flight count never dips to zero
  // until the whole chain is done).
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::function<void(int)> chain = [&](int depth) {
    counter.fetch_add(1);
    if (depth > 0) pool.submit([&chain, depth] { chain(depth - 1); });
  };
  for (int i = 0; i < 8; ++i) {
    pool.submit([&chain] { chain(16); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 8 * 17);
}

TEST(ThreadPool, ThrowingTaskDoesNotDeadlockWaitAndIsRethrown) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool stays usable and the error is not reported twice.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, FirstOfManyErrorsWins) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&ran] {
      ran.fetch_add(1);
      throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  pool.wait();  // remaining errors were dropped; wait() is clean again
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ConcurrentSubmittersAndWaitersAreRaceFree) {
  // Exercised under the tsan preset: several threads hammer submit() while
  // others call wait(). wait() only guarantees coverage of tasks it can
  // order before itself, but nothing may data-race or crash.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> drivers;
  drivers.reserve(6);
  for (int d = 0; d < 4; ++d) {
    drivers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 200; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (int d = 0; d < 2; ++d) {
    drivers.emplace_back([&pool] {
      for (int i = 0; i < 50; ++i) pool.wait();
    });
  }
  for (std::thread& t : drivers) t.join();
  pool.wait();
  EXPECT_EQ(counter.load(), 4 * 200);
}

TEST(ParallelFor, ThrowingBodyDoesNotDeadlockAndPropagates) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallelFor(pool, 64,
                  [&ran](std::size_t i) {
                    ran.fetch_add(1);
                    if (i % 7 == 3) throw std::runtime_error("body " +
                                                             std::to_string(i));
                  }),
      std::runtime_error);
  // Every index was processed despite the failures; the pool is reusable.
  EXPECT_EQ(ran.load(), 64);
  std::atomic<int> after{0};
  parallelFor(pool, 8, [&after](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(64, 0.0);
    parallelFor(pool, out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i * i);
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(8));
}

}  // namespace
}  // namespace cdbp
