#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cdbp {
namespace {

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, DefaultPicksAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, EachIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallelFor(pool, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ZeroCountIsNoOp) {
  ThreadPool pool(2);
  bool touched = false;
  parallelFor(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(64, 0.0);
    parallelFor(pool, out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i * i);
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(8));
}

}  // namespace
}  // namespace cdbp
