#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace cdbp {
namespace {

Flags parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  for (std::string& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

Flags parseStrict(std::vector<std::string> args,
                  std::vector<std::string> allowed) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  for (std::string& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data(), allowed);
}

TEST(Flags, EqualsSyntax) {
  Flags f = parse({"--items=500", "--mu=2.5"});
  EXPECT_EQ(f.getInt("items", 0), 500);
  EXPECT_DOUBLE_EQ(f.getDouble("mu", 0), 2.5);
}

TEST(Flags, SpaceSyntax) {
  Flags f = parse({"--items", "42", "--name", "hello"});
  EXPECT_EQ(f.getInt("items", 0), 42);
  EXPECT_EQ(f.getString("name", ""), "hello");
}

TEST(Flags, BareSwitch) {
  Flags f = parse({"--csv", "--items=3"});
  EXPECT_TRUE(f.has("csv"));
  EXPECT_FALSE(f.has("json"));
  EXPECT_EQ(f.getInt("items", 0), 3);
}

TEST(Flags, FallbacksWhenAbsent) {
  Flags f = parse({});
  EXPECT_EQ(f.getInt("items", 7), 7);
  EXPECT_DOUBLE_EQ(f.getDouble("mu", 1.5), 1.5);
  EXPECT_EQ(f.getString("name", "dflt"), "dflt");
}

TEST(Flags, BareSwitchFollowedByFlagIsNotAValue) {
  Flags f = parse({"--csv", "--verbose"});
  EXPECT_TRUE(f.has("csv"));
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_EQ(f.getString("csv", "x"), "");
}

TEST(Flags, NonFlagArgumentsIgnored) {
  Flags f = parse({"positional", "--a=1"});
  EXPECT_EQ(f.getInt("a", 0), 1);
  EXPECT_FALSE(f.has("positional"));
}

TEST(Flags, GetIntReturnsLong) {
  // The doc promises long: values beyond int range must survive.
  Flags f = parse({"--big=5000000000"});
  EXPECT_EQ(f.getInt("big", 0), 5000000000L);
}

TEST(Flags, GetBoolBareSwitchIsTrue) {
  Flags f = parse({"--csv"});
  EXPECT_TRUE(f.getBool("csv", false));
}

TEST(Flags, GetBoolFallbackWhenAbsent) {
  Flags f = parse({});
  EXPECT_TRUE(f.getBool("csv", true));
  EXPECT_FALSE(f.getBool("csv", false));
}

TEST(Flags, GetBoolSpellings) {
  Flags f = parse({"--a=true", "--b=NO", "--c=On", "--d=0", "--e=Yes",
                   "--g=off", "--h=1", "--i=False"});
  EXPECT_TRUE(f.getBool("a", false));
  EXPECT_FALSE(f.getBool("b", true));
  EXPECT_TRUE(f.getBool("c", false));
  EXPECT_FALSE(f.getBool("d", true));
  EXPECT_TRUE(f.getBool("e", false));
  EXPECT_FALSE(f.getBool("g", true));
  EXPECT_TRUE(f.getBool("h", false));
  EXPECT_FALSE(f.getBool("i", true));
}

TEST(Flags, GetBoolRejectsGarbage) {
  Flags f = parse({"--a=maybe"});
  EXPECT_THROW(f.getBool("a", false), std::invalid_argument);
}

TEST(Flags, GetIntRejectsJunk) {
  // strtol silently returned 0 for junk; the checked parser throws.
  Flags f = parse({"--items=16abc"});
  EXPECT_THROW(f.getInt("items", 0), std::invalid_argument);
  Flags g = parse({"--items=abc"});
  EXPECT_THROW(g.getInt("items", 0), std::invalid_argument);
  Flags h = parse({"--items=1.5"});
  EXPECT_THROW(h.getInt("items", 0), std::invalid_argument);
}

TEST(Flags, GetDoubleRejectsJunk) {
  Flags f = parse({"--mu=2.5x"});
  EXPECT_THROW(f.getDouble("mu", 0), std::invalid_argument);
  Flags g = parse({"--mu=abc"});
  EXPECT_THROW(g.getDouble("mu", 0), std::invalid_argument);
}

TEST(Flags, NumericSignsAndExponents) {
  Flags f = parse({"--items=-5", "--plus=+7", "--mu=2.5e-1"});
  EXPECT_EQ(f.getInt("items", 0), -5);
  EXPECT_EQ(f.getInt("plus", 0), 7);
  EXPECT_DOUBLE_EQ(f.getDouble("mu", 0), 0.25);
}

TEST(Flags, StrictAcceptsListedFlags) {
  Flags f = parseStrict({"--items=5", "--csv", "--mu", "2.5"},
                        {"items", "csv", "mu"});
  EXPECT_EQ(f.getInt("items", 0), 5);
  EXPECT_TRUE(f.has("csv"));
  EXPECT_DOUBLE_EQ(f.getDouble("mu", 0), 2.5);
}

TEST(Flags, StrictRejectsUnknownFlag) {
  EXPECT_THROW(parseStrict({"--iterms=5"}, {"items"}), std::invalid_argument);
}

TEST(Flags, StrictRejectsStrayPositional) {
  EXPECT_THROW(parseStrict({"stray"}, {"items"}), std::invalid_argument);
}

TEST(Flags, StrictAcceptsSpaceSeparatedValueNotAsPositional) {
  // "--items 42": the 42 is a flag value, not a stray positional.
  Flags f = parseStrict({"--items", "42"}, {"items"});
  EXPECT_EQ(f.getInt("items", 0), 42);
}

TEST(Flags, StrictRejectsValueAfterBareSwitchAtEnd) {
  // "--csv 42": csv takes no value here (42 becomes its value in lax mode,
  // consumed) — strict mode accepts it as the flag's value, not a stray.
  Flags f = parseStrict({"--csv", "--items=1"}, {"csv", "items"});
  EXPECT_TRUE(f.has("csv"));
}

}  // namespace
}  // namespace cdbp
