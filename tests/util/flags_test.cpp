#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cdbp {
namespace {

Flags parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  for (std::string& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  Flags f = parse({"--items=500", "--mu=2.5"});
  EXPECT_EQ(f.getInt("items", 0), 500);
  EXPECT_DOUBLE_EQ(f.getDouble("mu", 0), 2.5);
}

TEST(Flags, SpaceSyntax) {
  Flags f = parse({"--items", "42", "--name", "hello"});
  EXPECT_EQ(f.getInt("items", 0), 42);
  EXPECT_EQ(f.getString("name", ""), "hello");
}

TEST(Flags, BareSwitch) {
  Flags f = parse({"--csv", "--items=3"});
  EXPECT_TRUE(f.has("csv"));
  EXPECT_FALSE(f.has("json"));
  EXPECT_EQ(f.getInt("items", 0), 3);
}

TEST(Flags, FallbacksWhenAbsent) {
  Flags f = parse({});
  EXPECT_EQ(f.getInt("items", 7), 7);
  EXPECT_DOUBLE_EQ(f.getDouble("mu", 1.5), 1.5);
  EXPECT_EQ(f.getString("name", "dflt"), "dflt");
}

TEST(Flags, BareSwitchFollowedByFlagIsNotAValue) {
  Flags f = parse({"--csv", "--verbose"});
  EXPECT_TRUE(f.has("csv"));
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_EQ(f.getString("csv", "x"), "");
}

TEST(Flags, NonFlagArgumentsIgnored) {
  Flags f = parse({"positional", "--a=1"});
  EXPECT_EQ(f.getInt("a", 0), 1);
  EXPECT_FALSE(f.has("positional"));
}

}  // namespace
}  // namespace cdbp
