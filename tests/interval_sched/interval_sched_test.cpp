#include "interval_sched/interval_sched.hpp"

#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "util/rng.hpp"

namespace cdbp {
namespace {

IntervalSchedInstance makeJobs(
    std::initializer_list<std::pair<Time, Time>> intervals, std::size_t g) {
  std::vector<IntervalJob> jobs;
  ItemId id = 0;
  for (const auto& [a, b] : intervals) jobs.push_back({id++, {a, b}});
  return IntervalSchedInstance(std::move(jobs), g);
}

TEST(IntervalSched, RejectsInvalidInputs) {
  EXPECT_THROW(makeJobs({{0, 1}}, 0), std::invalid_argument);
  EXPECT_THROW(makeJobs({{2, 2}}, 3), std::invalid_argument);
}

TEST(IntervalSched, ConversionGivesUnitShares) {
  IntervalSchedInstance inst = makeJobs({{0, 2}, {1, 3}}, 4);
  Instance dbp = inst.toDbp();
  ASSERT_EQ(dbp.size(), 2u);
  EXPECT_DOUBLE_EQ(dbp[0].size, 0.25);
  EXPECT_DOUBLE_EQ(dbp[1].size, 0.25);
}

TEST(IntervalSched, MachineHoldsExactlyGConcurrentJobs) {
  // 5 identical jobs, g = 4: one machine takes 4, the fifth opens machine 2.
  IntervalSchedInstance inst =
      makeJobs({{0, 2}, {0, 2}, {0, 2}, {0, 2}, {0, 2}}, 4);
  IntervalScheduleResult r = greedyLongestFirst(inst);
  EXPECT_EQ(r.machinesUsed, 2u);
  EXPECT_DOUBLE_EQ(r.totalBusyTime, 4.0);
}

TEST(IntervalSched, GreedyPrefersLongJobsTogether) {
  // Two long jobs + two short ones, g = 2: longest-first groups the longs
  // on machine 0; shorts join where they fit.
  IntervalSchedInstance inst = makeJobs({{0, 10}, {0, 10}, {0, 1}, {0, 1}}, 2);
  IntervalScheduleResult r = greedyLongestFirst(inst);
  EXPECT_EQ(r.packing.binOf(0), r.packing.binOf(1));
  EXPECT_EQ(r.packing.binOf(2), r.packing.binOf(3));
  EXPECT_DOUBLE_EQ(r.totalBusyTime, 10.0 + 1.0);
}

TEST(IntervalSched, BucketFirstFitSeparatesLengthBuckets) {
  // alpha = 2, lengths 1 and 3: different buckets -> different machines
  // even though one machine could hold both (g = 2).
  IntervalSchedInstance inst = makeJobs({{0, 1}, {0, 3}}, 2);
  IntervalScheduleResult r = bucketFirstFit(inst, 2.0);
  EXPECT_EQ(r.machinesUsed, 2u);
}

TEST(IntervalSched, BothAlgorithmsProduceValidPackings) {
  Rng rng(77);
  std::vector<IntervalJob> jobs;
  for (ItemId i = 0; i < 200; ++i) {
    Time a = rng.uniform(0, 50);
    jobs.push_back({i, {a, a + rng.uniform(1, 9)}});
  }
  IntervalSchedInstance inst(std::move(jobs), 5);
  IntervalScheduleResult greedy = greedyLongestFirst(inst);
  IntervalScheduleResult bucket = bucketFirstFit(inst, 2.0);
  EXPECT_FALSE(greedy.packing.validate().has_value());
  EXPECT_FALSE(bucket.packing.validate().has_value());
  double lb3 = lowerBounds(*greedy.dbpInstance).ceilIntegral;
  EXPECT_GE(greedy.totalBusyTime + 1e-6, lb3);
  EXPECT_GE(bucket.totalBusyTime + 1e-6, lb3);
  // Flammini's guarantee transfers: greedy <= 4 * d + span-ish; use the
  // proven DDFF inequality as the checkable surrogate.
  EXPECT_LT(greedy.totalBusyTime,
            4.0 * greedy.dbpInstance->demand() + greedy.dbpInstance->span());
}

TEST(IntervalSched, EmptyInstance) {
  IntervalSchedInstance inst({}, 3);
  IntervalScheduleResult r = greedyLongestFirst(inst);
  EXPECT_EQ(r.machinesUsed, 0u);
  EXPECT_DOUBLE_EQ(r.totalBusyTime, 0.0);
}

}  // namespace
}  // namespace cdbp
