#include "offline/ordered_first_fit.hpp"

#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "offline/ddff.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

constexpr ItemOrder kAllOrders[] = {
    ItemOrder::kDurationDescending, ItemOrder::kDurationAscending,
    ItemOrder::kArrival, ItemOrder::kSizeDescending,
    ItemOrder::kDemandDescending};

TEST(OrderedFirstFit, DurationDescendingMatchesDdff) {
  WorkloadSpec spec;
  spec.numItems = 120;
  Instance inst = generateWorkload(spec, 7);
  Packing viaOrder = orderedFirstFit(inst, ItemOrder::kDurationDescending);
  Packing viaDdff = durationDescendingFirstFit(inst);
  EXPECT_EQ(viaOrder.binOf(), viaDdff.binOf());
}

TEST(OrderedFirstFit, OrdersActuallyDiffer) {
  // Arrival order pairs the short item with a long one (usage 38.5);
  // duration-descending pairs the two long items first (usage 21).
  Instance inst = InstanceBuilder()
                      .add(0.5, 0, 2)      // short, arrives first
                      .add(0.5, 1, 20)     // long
                      .add(0.5, 1.5, 20)   // long
                      .build();
  Packing arrival = orderedFirstFit(inst, ItemOrder::kArrival);
  Packing duration = orderedFirstFit(inst, ItemOrder::kDurationDescending);
  EXPECT_FALSE(arrival.validate().has_value());
  EXPECT_FALSE(duration.validate().has_value());
  EXPECT_NE(arrival.binOf(), duration.binOf());
  EXPECT_DOUBLE_EQ(arrival.totalUsage(), 38.5);
  EXPECT_DOUBLE_EQ(duration.totalUsage(), 21.0);
}

TEST(OrderedFirstFit, NamesAreDistinct) {
  std::set<std::string> names;
  for (ItemOrder order : kAllOrders) names.insert(itemOrderName(order));
  EXPECT_EQ(names.size(), 5u);
}

class OrderedFirstFitProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderedFirstFitProperty, EveryOrderYieldsFeasiblePackings) {
  WorkloadSpec spec;
  spec.numItems = 100;
  spec.mu = 16.0;
  Instance inst = generateWorkload(spec, GetParam());
  double lb3 = lowerBounds(inst).ceilIntegral;
  for (ItemOrder order : kAllOrders) {
    Packing packing = orderedFirstFit(inst, order);
    EXPECT_FALSE(packing.validate().has_value()) << itemOrderName(order);
    EXPECT_GE(packing.totalUsage() + 1e-6, lb3) << itemOrderName(order);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedFirstFitProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(OrderedFirstFit, OnlyDurationDescendingCarriesTheTheoremBound) {
  // The Theorem 1 inequality is proven for duration-descending; this test
  // documents that we at least always satisfy it for that order (other
  // orders may or may not).
  WorkloadSpec spec;
  spec.numItems = 150;
  spec.mu = 24.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Instance inst = generateWorkload(spec, seed);
    Packing ddff = orderedFirstFit(inst, ItemOrder::kDurationDescending);
    EXPECT_LT(ddff.totalUsage(), 4.0 * inst.demand() + inst.span() + 1e-6);
  }
}

}  // namespace
}  // namespace cdbp
