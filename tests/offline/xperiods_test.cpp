#include "offline/xperiods.hpp"

#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "core/interval.hpp"
#include "offline/ddff.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

std::vector<Item> makeItems(
    std::initializer_list<std::tuple<Size, Time, Time>> specs) {
  std::vector<Item> items;
  ItemId id = 0;
  for (const auto& [s, a, d] : specs) items.emplace_back(id++, s, a, d);
  return items;
}

TEST(XPeriods, RemovesContainedItems) {
  // Item 1 is inside item 0; item 2 staggers out.
  std::vector<Item> items =
      makeItems({{0.1, 0, 10}, {0.1, 2, 5}, {0.1, 8, 12}});
  std::vector<Item> reduced = removeContainedItems(items);
  ASSERT_EQ(reduced.size(), 2u);
  EXPECT_EQ(reduced[0].id, 0u);
  EXPECT_EQ(reduced[1].id, 2u);
  // Departures strictly increase in the reduced list.
  EXPECT_LT(reduced[0].departure(), reduced[1].departure());
}

TEST(XPeriods, EqualIntervalsKeepOne) {
  std::vector<Item> items = makeItems({{0.1, 0, 5}, {0.2, 0, 5}});
  EXPECT_EQ(removeContainedItems(items).size(), 1u);
}

TEST(XPeriods, SplitAtArrivals) {
  std::vector<Item> items = makeItems({{0.5, 0, 4}, {0.5, 2, 6}});
  std::vector<XPeriod> periods = xPeriods(items);
  ASSERT_EQ(periods.size(), 2u);
  EXPECT_EQ(periods[0].period, Interval(0, 2));  // cut at item 1's arrival
  EXPECT_EQ(periods[1].period, Interval(2, 6));
}

TEST(XPeriods, GapsKeepFullIntervals) {
  std::vector<Item> items = makeItems({{0.5, 0, 2}, {0.5, 10, 12}});
  std::vector<XPeriod> periods = xPeriods(items);
  ASSERT_EQ(periods.size(), 2u);
  EXPECT_EQ(periods[0].period, Interval(0, 2));
  EXPECT_EQ(periods[1].period, Interval(10, 12));
}

TEST(XPeriods, DemandIsSizeWeightedLengths) {
  std::vector<Item> items = makeItems({{0.5, 0, 4}, {0.25, 2, 6}});
  // X(0) = [0,2) -> 0.5*2 = 1; X(1) = [2,6) -> 0.25*4 = 1.
  EXPECT_DOUBLE_EQ(xPeriodDemand(items), 2.0);
}

TEST(XPeriods, EmptyInput) {
  EXPECT_TRUE(xPeriods({}).empty());
  EXPECT_DOUBLE_EQ(xPeriodDemand({}), 0.0);
}

class XPeriodsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XPeriodsProperty, LengthsSumToSpanAndStayInsideIntervals) {
  WorkloadSpec spec;
  spec.numItems = 80;
  spec.mu = 10.0;
  Instance inst = generateWorkload(spec, GetParam());
  // Use a real DDFF bin's contents: the proof applies them per bin.
  Packing packing = durationDescendingFirstFit(inst);
  for (std::size_t b = 0; b < packing.numBins(); ++b) {
    std::vector<Item> binItems;
    for (ItemId id : packing.bin(static_cast<BinId>(b)).items()) {
      binItems.push_back(inst[id]);
    }
    std::vector<XPeriod> periods = xPeriods(binItems);
    // 1. Disjoint and sum to the span (reduction preserves the span).
    double total = 0;
    IntervalSet covered;
    for (const XPeriod& x : periods) {
      total += x.period.length();
      EXPECT_FALSE(covered.overlaps(x.period));
      covered.add(x.period);
    }
    IntervalSet span;
    for (const Item& r : binItems) span.add(r.interval);
    EXPECT_NEAR(total, span.measure(), 1e-9);
    // 2. Each X-period sits inside its owner's active interval.
    for (const XPeriod& x : periods) {
      EXPECT_TRUE(inst[x.item].interval.contains(x.period));
    }
    // 3. The d_k quantity lower-bounds the bin's time-space demand
    //    (inequality (1) of the proof).
    double demand = 0;
    for (const Item& r : binItems) demand += r.demand();
    EXPECT_LE(xPeriodDemand(binItems), demand + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XPeriodsProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace cdbp
