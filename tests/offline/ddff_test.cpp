#include "offline/ddff.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/lower_bounds.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(Ddff, OrderingIsDurationDescendingWithStableTies) {
  Item longItem(0, 0.1, 0, 10);
  Item shortItem(1, 0.1, 0, 1);
  EXPECT_TRUE(ddffOrderBefore(longItem, shortItem));
  EXPECT_FALSE(ddffOrderBefore(shortItem, longItem));
  Item tieEarly(2, 0.1, 0, 5);
  Item tieLate(3, 0.1, 1, 6);
  EXPECT_TRUE(ddffOrderBefore(tieEarly, tieLate));
  Item tieSameArrivalLowId(4, 0.1, 0, 5);
  Item tieSameArrivalHighId(5, 0.1, 0, 5);
  EXPECT_TRUE(ddffOrderBefore(tieSameArrivalLowId, tieSameArrivalHighId));
}

TEST(Ddff, SingleItem) {
  Instance inst = InstanceBuilder().add(0.5, 0, 2).build();
  Packing packing = durationDescendingFirstFit(inst);
  EXPECT_EQ(packing.numBins(), 1u);
  EXPECT_DOUBLE_EQ(packing.totalUsage(), 2.0);
}

TEST(Ddff, PacksLongItemsFirst) {
  // The long thin item is packed first (bin 0); the short fat item fits
  // nowhere near it at overlap times, so it opens bin 1 — even though it
  // arrives earlier.
  Instance inst = InstanceBuilder()
                      .add(0.9, 0, 1)    // short, fat, arrives first
                      .add(0.2, 0, 10)   // long, thin
                      .build();
  Packing packing = durationDescendingFirstFit(inst);
  EXPECT_EQ(packing.binOf(1), 0);  // long item owns bin 0
  EXPECT_EQ(packing.binOf(0), 1);
}

TEST(Ddff, FirstFitPrefersLowestIndexedBin) {
  Instance inst = InstanceBuilder()
                      .add(0.4, 0, 10)  // bin 0
                      .add(0.7, 0, 9)   // bin 1 (0.4+0.7 > 1)
                      .add(0.5, 0, 8)   // fits bin 0 (0.9), not bin 1
                      .add(0.2, 0, 7)   // fits bin 1 (0.9), not bin 0
                      .build();
  Packing packing = durationDescendingFirstFit(inst);
  EXPECT_EQ(packing.binOf(0), 0);
  EXPECT_EQ(packing.binOf(1), 1);
  EXPECT_EQ(packing.binOf(2), 0);
  EXPECT_EQ(packing.binOf(3), 1);
}

TEST(Ddff, ReusesBinAcrossDisjointTimes) {
  Instance inst = InstanceBuilder().add(1.0, 0, 1).add(1.0, 1, 2).build();
  Packing packing = durationDescendingFirstFit(inst);
  EXPECT_EQ(packing.numBins(), 1u);
  EXPECT_DOUBLE_EQ(packing.totalUsage(), 2.0);
}

TEST(Ddff, WholeIntervalFeasibilityIsChecked) {
  // Item 2's bins are both EMPTY at its arrival time 0 — a naive
  // current-level check would accept bin 0 — but it clashes with both
  // earlier items later in its interval, so DDFF must open a third bin.
  Instance inst = InstanceBuilder()
                      .add(0.6, 2, 12)   // longest: bin 0
                      .add(0.6, 4, 13)   // overlaps item 0: bin 1
                      .add(0.6, 0, 5)    // overlaps both on [2,5): bin 2
                      .build();
  Packing packing = durationDescendingFirstFit(inst);
  EXPECT_FALSE(packing.validate().has_value());
  EXPECT_EQ(packing.numBins(), 3u);
  EXPECT_EQ(packing.binOf(2), 2);
}

class DdffProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DdffProperty, FeasibleAndWithinTheoremOneInequality) {
  WorkloadSpec spec;
  spec.numItems = 120;
  spec.mu = 10.0;
  Instance inst = generateWorkload(spec, GetParam());
  Packing packing = durationDescendingFirstFit(inst);
  ASSERT_FALSE(packing.validate().has_value());
  // The inequality actually proven for Theorem 1:
  // total usage < 4 d(R) + span(R).
  EXPECT_LT(packing.totalUsage(), 4.0 * inst.demand() + inst.span() + 1e-9);
  // And never below the Proposition 3 bound.
  EXPECT_GE(packing.totalUsage() + 1e-9, lowerBounds(inst).ceilIntegral);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DdffProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

class DdffVsOptimal : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DdffVsOptimal, WithinFiveTimesBruteForceOptimum) {
  WorkloadSpec spec;
  spec.numItems = 7;
  spec.arrivalRate = 2.5;
  spec.mu = 5.0;
  Instance inst = generateWorkload(spec, GetParam());
  Packing packing = durationDescendingFirstFit(inst);
  auto opt = bruteForceOptimal(inst);
  ASSERT_TRUE(opt.has_value());
  EXPECT_LE(packing.totalUsage(), 5.0 * opt->usage + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DdffVsOptimal,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace cdbp
