#include "offline/chart_render.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/generators.hpp"

namespace cdbp {
namespace {

std::vector<Item> makeItems(
    std::initializer_list<std::tuple<Size, Time, Time>> specs) {
  std::vector<Item> items;
  ItemId id = 0;
  for (const auto& [s, a, d] : specs) items.emplace_back(id++, s, a, d);
  return items;
}

TEST(ChartRender, EmptyChart) {
  DemandChart chart({});
  std::ostringstream os;
  renderDemandChart(chart, os);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(ChartRender, SingleItemFillsItsRectangle) {
  DemandChart chart(makeItems({{0.4, 0, 2}}));
  std::ostringstream os;
  renderDemandChart(chart, os, {.width = 20, .height = 6, .showLegend = false});
  std::string out = os.str();
  // Item 0 renders as 'a' and fills the whole chart (its own demand).
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(ChartRender, OverlapRendersHash) {
  // Force an overlap: staggered chains where Phase 1 must double-stack.
  DemandChart chart(makeItems({{0.4, 0, 2}, {0.4, 1, 3}}));
  std::ostringstream os;
  renderDemandChart(chart, os, {.width = 30, .height = 8, .showLegend = false});
  std::string out = os.str();
  // Both items appear; overlap may or may not occur depending on the
  // placement — what must hold is that the render contains only legal
  // glyphs.
  for (char ch : out) {
    EXPECT_TRUE(ch == ' ' || ch == '.' || ch == '#' || ch == '|' || ch == '+' ||
                ch == '-' || ch == '\n' || (ch >= 'a' && ch <= 'z'))
        << "glyph '" << ch << "'";
  }
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(ChartRender, LegendToggle) {
  DemandChart chart(makeItems({{0.3, 0, 1}}));
  std::ostringstream with, without;
  renderDemandChart(chart, with, {.showLegend = true});
  renderDemandChart(chart, without, {.showLegend = false});
  EXPECT_NE(with.str().find("placed items"), std::string::npos);
  EXPECT_EQ(without.str().find("placed items"), std::string::npos);
}

TEST(ChartRender, RandomChartRendersWithoutUncoloredCells) {
  WorkloadSpec spec;
  spec.numItems = 25;
  spec.sizes = SizeDist::kSmallOnly;
  Instance inst = generateWorkload(spec, 8);
  DemandChart chart(inst.items());
  std::ostringstream os;
  renderDemandChart(chart, os, {.width = 60, .height = 14, .showLegend = false});
  EXPECT_EQ(os.str().find('?'), std::string::npos);
}

}  // namespace
}  // namespace cdbp
