#include "offline/demand_chart.hpp"

#include <gtest/gtest.h>

#include "workload/generators.hpp"

namespace cdbp {
namespace {

std::vector<Item> makeItems(
    std::initializer_list<std::tuple<Size, Time, Time>> specs) {
  std::vector<Item> items;
  ItemId id = 0;
  for (const auto& [s, a, d] : specs) items.emplace_back(id++, s, a, d);
  return items;
}

TEST(DemandChart, RejectsLargeItems) {
  EXPECT_THROW(DemandChart(makeItems({{0.6, 0, 1}})), std::invalid_argument);
}

TEST(DemandChart, SingleItemIsPlacedAtItsOwnHeight) {
  DemandChart chart(makeItems({{0.4, 0, 2}}));
  ASSERT_EQ(chart.placements().size(), 1u);
  EXPECT_NEAR(chart.placements()[0].altitude, 0.4, 1e-12);
  EXPECT_TRUE(chart.allPlacementsInsideChart());
  EXPECT_NEAR(chart.coloredArea(), chart.chartArea(), 1e-9);
}

TEST(DemandChart, StackedItemsGetDistinctAltitudes) {
  DemandChart chart(makeItems({{0.3, 0, 2}, {0.2, 0, 2}}));
  ASSERT_EQ(chart.placements().size(), 2u);
  auto a0 = chart.altitudeOf(0);
  auto a1 = chart.altitudeOf(1);
  ASSERT_TRUE(a0 && a1);
  EXPECT_NE(*a0, *a1);
  EXPECT_EQ(chart.maxPlacementOverlap(), 1u);  // perfectly stacked
  EXPECT_NEAR(chart.maxHeight(), 0.5, 1e-12);
}

TEST(DemandChart, ChartHeightFollowsActiveSizes) {
  DemandChart chart(makeItems({{0.3, 0, 4}, {0.2, 1, 3}}));
  EXPECT_NEAR(chart.height().valueAt(0.5), 0.3, 1e-12);
  EXPECT_NEAR(chart.height().valueAt(2.0), 0.5, 1e-12);
  EXPECT_NEAR(chart.height().valueAt(3.5), 0.3, 1e-12);
  EXPECT_NEAR(chart.chartArea(), 0.3 * 4 + 0.2 * 2, 1e-12);
}

TEST(DemandChart, StaggeredItemsAllPlaced) {
  DemandChart chart(
      makeItems({{0.4, 0, 2}, {0.4, 1, 3}, {0.4, 2, 4}, {0.4, 3, 5}}));
  EXPECT_EQ(chart.placements().size(), 4u);
  EXPECT_TRUE(chart.allPlacementsInsideChart());
  EXPECT_LE(chart.maxPlacementOverlap(), 2u);
  EXPECT_NEAR(chart.coloredArea(), chart.chartArea(), 1e-9);
}

TEST(DemandChart, EmptyItemListYieldsEmptyChart) {
  DemandChart chart({});
  EXPECT_TRUE(chart.placements().empty());
  EXPECT_DOUBLE_EQ(chart.chartArea(), 0.0);
  EXPECT_DOUBLE_EQ(chart.maxHeight(), 0.0);
}

TEST(DemandChart, AltitudeOfUnknownItemIsNullopt) {
  DemandChart chart(makeItems({{0.2, 0, 1}}));
  EXPECT_FALSE(chart.altitudeOf(99).has_value());
}

// The Lemma 2-5 sweep on random small-item workloads: the cornerstone of
// the Dual Coloring analysis.
class DemandChartLemmas : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DemandChartLemmas, AllFourPhaseOneProperties) {
  WorkloadSpec spec;
  spec.numItems = 60;
  spec.sizes = SizeDist::kSmallOnly;
  spec.minSize = 0.02;
  spec.mu = 8.0;
  spec.arrivalRate = 6.0;
  Instance inst = generateWorkload(spec, GetParam());
  DemandChart chart(inst.items());

  // Lemma 4: every small item is placed.
  EXPECT_EQ(chart.placements().size(), inst.size());
  // Lemma 2: the chart ends fully colored (red+blue partition the area).
  EXPECT_NEAR(chart.coloredArea(), chart.chartArea(),
              1e-6 * std::max(1.0, chart.chartArea()));
  // Lemma 3: every rectangle lies inside the chart.
  EXPECT_TRUE(chart.allPlacementsInsideChart());
  // Lemma 5: no three items overlap.
  EXPECT_LE(chart.maxPlacementOverlap(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DemandChartLemmas,
                         ::testing::Range<std::uint64_t>(1, 26));

class DemandChartBursty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DemandChartBursty, LemmasHoldUnderBurstyArrivalsAndFlavors) {
  WorkloadSpec spec;
  spec.numItems = 50;
  spec.arrivals = ArrivalProcess::kBursty;
  spec.sizes = SizeDist::kFlavors;
  spec.flavors = {0.125, 0.25, 0.5};
  spec.durations = DurationDist::kBimodal;
  spec.mu = 16.0;
  Instance inst = generateWorkload(spec, GetParam());
  DemandChart chart(inst.items());
  EXPECT_EQ(chart.placements().size(), inst.size());
  EXPECT_NEAR(chart.coloredArea(), chart.chartArea(),
              1e-6 * std::max(1.0, chart.chartArea()));
  EXPECT_TRUE(chart.allPlacementsInsideChart());
  EXPECT_LE(chart.maxPlacementOverlap(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DemandChartBursty,
                         ::testing::Range<std::uint64_t>(50, 62));

}  // namespace
}  // namespace cdbp
