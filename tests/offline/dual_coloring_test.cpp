#include "offline/dual_coloring.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/brute_force.hpp"
#include "core/lower_bounds.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(DualColoring, EmptyInstance) {
  DualColoringResult result = dualColoring(Instance{});
  EXPECT_EQ(result.packing.numBins(), 0u);
  EXPECT_EQ(result.numStripes, 0u);
}

TEST(DualColoring, OnlyLargeItems) {
  Instance inst = InstanceBuilder().add(0.8, 0, 2).add(0.9, 0, 2).build();
  DualColoringResult result = dualColoring(inst);
  EXPECT_FALSE(result.packing.validate().has_value());
  EXPECT_EQ(result.packing.numBins(), 2u);
  EXPECT_EQ(result.largeBins, 2u);
  EXPECT_EQ(result.smallBins, 0u);
  EXPECT_FALSE(result.chart);
}

TEST(DualColoring, OnlySmallItemsSharableIntoOneBin) {
  Instance inst = InstanceBuilder().add(0.25, 0, 4).add(0.25, 0, 4).build();
  DualColoringResult result = dualColoring(inst);
  EXPECT_FALSE(result.packing.validate().has_value());
  // Peak S_S = 0.5 -> one stripe -> one "within" bin suffices.
  EXPECT_EQ(result.numStripes, 1u);
  EXPECT_DOUBLE_EQ(result.packing.totalUsage(), 4.0);
}

TEST(DualColoring, LargeBinsNeverHostSmallItems) {
  Instance inst = InstanceBuilder()
                      .add(0.7, 0, 4)   // large
                      .add(0.3, 0, 4)   // small — would fit the large bin
                      .build();
  DualColoringResult result = dualColoring(inst);
  EXPECT_NE(result.packing.binOf(0), result.packing.binOf(1));
}

TEST(DualColoring, MixedGroupsStayFeasible) {
  Instance inst = InstanceBuilder()
                      .add(0.6, 0, 3)
                      .add(0.5, 0, 5)
                      .add(0.4, 1, 4)
                      .add(0.3, 2, 6)
                      .add(0.9, 4, 7)
                      .build();
  DualColoringResult result = dualColoring(inst);
  EXPECT_FALSE(result.packing.validate().has_value());
}

TEST(DualColoring, StripeCountMatchesPeak) {
  // Peak small load 1.3 -> m = ceil(2.6) = 3 stripes.
  Instance inst = InstanceBuilder()
                      .add(0.5, 0, 2)
                      .add(0.5, 0, 2)
                      .add(0.3, 0, 2)
                      .build();
  DualColoringResult result = dualColoring(inst);
  EXPECT_EQ(result.numStripes, 3u);
  EXPECT_FALSE(result.packing.validate().has_value());
}

// The inequality actually proven for Theorem 2: at every instant the number
// of open bins is at most 4 * ceil(S(t)).
class DualColoringBinBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualColoringBinBound, OpenBinsAtMostFourCeilS) {
  WorkloadSpec spec;
  spec.numItems = 80;
  spec.mu = 8.0;
  spec.minSize = 0.05;
  spec.maxSize = 1.0;
  Instance inst = generateWorkload(spec, GetParam());
  DualColoringResult result = dualColoring(inst);
  ASSERT_FALSE(result.packing.validate().has_value());

  for (Time t : inst.eventTimes()) {
    // Probe strictly inside each elementary segment.
    Time probe = t + 1e-7;
    double s = inst.totalSizeAt(probe);
    if (s <= 0) continue;
    double snapped = std::round(s);
    if (std::fabs(s - snapped) > 1e-9) snapped = s;
    std::size_t cap = static_cast<std::size_t>(4.0 * std::ceil(snapped - 1e-12));
    EXPECT_LE(result.packing.openBinsAt(probe), cap) << "at t=" << probe;
  }
  // Which integrates to the Theorem 2 guarantee against LB3 <= OPT_total.
  EXPECT_LE(result.packing.totalUsage(),
            4.0 * lowerBounds(inst).ceilIntegral + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualColoringBinBound,
                         ::testing::Range<std::uint64_t>(1, 21));

// The finer per-family inequalities from the Theorem 2 proof: at any time,
// small-group bins <= 2*ceil(2*S_S(t)) - 1 and large-group bins
// <= floor(2*S_L(t)).
class DualColoringFamilyBounds
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualColoringFamilyBounds, PerFamilyOpenBinBoundsHold) {
  WorkloadSpec spec;
  spec.numItems = 70;
  spec.mu = 8.0;
  Instance inst = generateWorkload(spec, GetParam());
  DualColoringResult result = dualColoring(inst);
  ASSERT_EQ(result.binKind.size(), result.packing.numBins());

  for (Time t : inst.eventTimes()) {
    Time probe = t + 1e-7;
    double smallSize = 0, largeSize = 0;
    for (const Item& r : inst.items()) {
      if (!r.activeAt(probe)) continue;
      (r.size <= 0.5 ? smallSize : largeSize) += r.size;
    }
    std::size_t smallOpen = 0, largeOpen = 0;
    for (std::size_t b = 0; b < result.packing.numBins(); ++b) {
      if (!result.packing.bin(static_cast<BinId>(b)).busyPeriods().contains(probe)) {
        continue;
      }
      if (result.binKind[b] == DualColoringBinKind::kLarge) {
        ++largeOpen;
      } else {
        ++smallOpen;
      }
    }
    if (smallSize > 1e-9) {
      double cap = 2.0 * std::ceil(2.0 * smallSize - 1e-9) - 1.0;
      EXPECT_LE(static_cast<double>(smallOpen), cap) << "t=" << probe;
    } else {
      EXPECT_EQ(smallOpen, 0u);
    }
    double largeCap = std::floor(2.0 * largeSize + 1e-9);
    EXPECT_LE(static_cast<double>(largeOpen), largeCap) << "t=" << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualColoringFamilyBounds,
                         ::testing::Range<std::uint64_t>(300, 315));

class DualColoringVsOptimal : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualColoringVsOptimal, WithinFourTimesBruteForceOptimum) {
  WorkloadSpec spec;
  spec.numItems = 7;
  spec.arrivalRate = 2.5;
  spec.mu = 5.0;
  Instance inst = generateWorkload(spec, GetParam());
  DualColoringResult result = dualColoring(inst);
  auto opt = bruteForceOptimal(inst);
  ASSERT_TRUE(opt.has_value());
  EXPECT_LE(result.packing.totalUsage(), 4.0 * opt->usage + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualColoringVsOptimal,
                         ::testing::Range<std::uint64_t>(200, 220));

}  // namespace
}  // namespace cdbp
