#include "core/opt_total.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/lower_bounds.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(OptTotal, SingleItem) {
  Instance inst = InstanceBuilder().add(0.5, 0, 3).build();
  OptTotalResult opt = optTotal(inst);
  EXPECT_TRUE(opt.exact);
  EXPECT_DOUBLE_EQ(opt.value(), 3.0);
}

TEST(OptTotal, TwoHalvesShareABin) {
  Instance inst = InstanceBuilder().add(0.5, 0, 2).add(0.5, 0, 2).build();
  OptTotalResult opt = optTotal(inst);
  EXPECT_DOUBLE_EQ(opt.value(), 2.0);
}

TEST(OptTotal, RepackingBeatsFixedAssignment) {
  // Three items: the repacking adversary can always pack the two active
  // 0.6-items... they never fit together, but staggered bigs show the
  // segment sweep: S = 0.6 on [0,1), 1.2 on [1,2), 0.6 on [2,3):
  // bins: 1, 2, 1 -> OPT_total = 4.
  Instance inst = InstanceBuilder().add(0.6, 0, 2).add(0.6, 1, 3).build();
  OptTotalResult opt = optTotal(inst);
  EXPECT_TRUE(opt.exact);
  EXPECT_DOUBLE_EQ(opt.value(), 1.0 + 2.0 + 1.0);
}

TEST(OptTotal, GapsContributeNothing) {
  Instance inst = InstanceBuilder().add(0.9, 0, 1).add(0.9, 10, 11).build();
  EXPECT_DOUBLE_EQ(optTotal(inst).value(), 2.0);
}

TEST(OptTotal, EmptyInstance) {
  EXPECT_DOUBLE_EQ(optTotal(Instance{}).value(), 0.0);
}

class OptTotalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptTotalProperty, SandwichedBetweenLb3AndBruteForce) {
  WorkloadSpec spec;
  spec.numItems = 7;
  spec.arrivalRate = 2.0;
  spec.mu = 4.0;
  Instance inst = generateWorkload(spec, GetParam());
  OptTotalResult opt = optTotal(inst);
  EXPECT_TRUE(opt.exact);
  LowerBounds lb = lowerBounds(inst);
  // LB3 <= OPT_total: ceil(S(t)) <= OPT(R, t) pointwise.
  EXPECT_LE(lb.ceilIntegral, opt.value() + 1e-9);
  // OPT_total <= any fixed packing's usage, in particular the optimal one.
  auto brute = bruteForceOptimal(inst);
  ASSERT_TRUE(brute.has_value());
  EXPECT_LE(opt.value(), brute->usage + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptTotalProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace cdbp
