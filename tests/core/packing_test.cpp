#include "core/packing.hpp"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

Instance smallInstance() {
  return InstanceBuilder()
      .add(0.5, 0, 4)
      .add(0.5, 1, 3)
      .add(0.75, 2, 5)
      .build();
}

TEST(Packing, TotalUsageSumsBinSpans) {
  Instance inst = smallInstance();
  // Items 0,1 share bin 0 (span 4); item 2 alone in bin 1 (span 3).
  Packing packing(inst, {0, 0, 1});
  EXPECT_DOUBLE_EQ(packing.binUsage(0), 4.0);
  EXPECT_DOUBLE_EQ(packing.binUsage(1), 3.0);
  EXPECT_DOUBLE_EQ(packing.totalUsage(), 7.0);
  EXPECT_EQ(packing.numBins(), 2u);
}

TEST(Packing, ValidAssignmentPassesValidation) {
  Instance inst = smallInstance();
  Packing packing(inst, {0, 0, 1});
  EXPECT_FALSE(packing.validate().has_value());
}

TEST(Packing, OverfullBinFailsValidation) {
  Instance inst = smallInstance();
  // Items 1 (0.5) and 2 (0.75) overlap on [2,3): level 1.25.
  Packing packing(inst, {0, 1, 1});
  auto error = packing.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("exceeds capacity"), std::string::npos);
}

TEST(Packing, UnassignedItemFailsValidation) {
  Instance inst = smallInstance();
  Packing packing(inst, {0, kUnassigned, 1});
  auto error = packing.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("unassigned"), std::string::npos);
}

TEST(Packing, SparseBinIdsFailValidation) {
  Instance inst = smallInstance();
  Packing packing(inst, {0, 0, 2});  // bin 1 never used
  auto error = packing.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("not dense"), std::string::npos);
}

TEST(Packing, MismatchedAssignmentSizeThrows) {
  Instance inst = smallInstance();
  EXPECT_THROW(Packing(inst, {0, 0}), std::invalid_argument);
}

TEST(Packing, OpenBinsAtFollowsBusyPeriods) {
  Instance inst = smallInstance();
  Packing packing(inst, {0, 0, 1});
  EXPECT_EQ(packing.openBinsAt(0.5), 1u);
  EXPECT_EQ(packing.openBinsAt(2.5), 2u);
  EXPECT_EQ(packing.openBinsAt(4.5), 1u);
  EXPECT_EQ(packing.openBinsAt(6.0), 0u);
  EXPECT_EQ(packing.maxConcurrentBins(), 2u);
}

TEST(Packing, OpenBinProfileIntegralEqualsTotalUsage) {
  Instance inst = smallInstance();
  Packing packing(inst, {0, 1, 2});
  EXPECT_NEAR(packing.openBinProfile().integral(), packing.totalUsage(), 1e-9);
}

TEST(Packing, AverageUtilizationIsDemandOverUsage) {
  Instance inst = InstanceBuilder().add(0.5, 0, 2).build();
  Packing packing(inst, {0});
  EXPECT_DOUBLE_EQ(packing.averageUtilization(), 0.5);
}

TEST(Packing, EmptyInstanceHasZeroUsage) {
  Instance inst;
  Packing packing(inst, {});
  EXPECT_DOUBLE_EQ(packing.totalUsage(), 0.0);
  EXPECT_EQ(packing.numBins(), 0u);
  EXPECT_FALSE(packing.validate().has_value());
}

}  // namespace
}  // namespace cdbp
