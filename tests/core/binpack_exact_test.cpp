#include "core/binpack_exact.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cdbp {
namespace {

TEST(FirstFitDecreasing, SimpleCases) {
  EXPECT_EQ(firstFitDecreasingBinCount({}), 0u);
  EXPECT_EQ(firstFitDecreasingBinCount({0.5, 0.5}), 1u);
  EXPECT_EQ(firstFitDecreasingBinCount({0.6, 0.6}), 2u);
  EXPECT_EQ(firstFitDecreasingBinCount({0.5, 0.3, 0.2, 0.5, 0.3, 0.2}), 2u);
}

TEST(FractionalBound, CeilOfTotal) {
  EXPECT_EQ(fractionalBinLowerBound({}), 0u);
  EXPECT_EQ(fractionalBinLowerBound({0.5}), 1u);
  EXPECT_EQ(fractionalBinLowerBound({0.5, 0.5}), 1u);
  EXPECT_EQ(fractionalBinLowerBound({0.5, 0.5, 0.1}), 2u);
}

TEST(FractionalBound, SnapsFloatNoise) {
  // Ten 0.1s sum to slightly under 1 in binary; the bound must be 1, and a
  // hair over an integer must not bump it to the next bin.
  std::vector<Size> sizes(10, 0.1);
  EXPECT_EQ(fractionalBinLowerBound(sizes), 1u);
}

TEST(MinBinCount, MatchesKnownOptima) {
  EXPECT_EQ(minBinCount({}), 0u);
  EXPECT_EQ(minBinCount({0.9}), 1u);
  EXPECT_EQ(minBinCount({0.6, 0.6, 0.6}), 3u);
  EXPECT_EQ(minBinCount({0.5, 0.5, 0.5, 0.5}), 2u);
  // FFD is suboptimal here: {0.51,0.27,0.27,0.26,0.41,0.28}: FFD opens 3,
  // optimum is 2 ({0.51,0.28,0.21?}) — craft a classic FFD-beating case:
  // sizes {0.35,0.35,0.3,0.3,0.35,0.35}: optimum 2 via (0.35+0.35+0.3)x2.
  EXPECT_EQ(minBinCount({0.35, 0.35, 0.3, 0.3, 0.35, 0.35}), 2u);
}

TEST(MinBinCount, BeatsFFDWhenFFDIsSuboptimal) {
  // Classic instance where FFD uses 3 bins but 2 suffice:
  // bins (0.45+0.35+0.2) and (0.45+0.35+0.2).
  std::vector<Size> sizes = {0.45, 0.45, 0.35, 0.35, 0.2, 0.2};
  std::size_t ffd = firstFitDecreasingBinCount(sizes);
  std::size_t opt = minBinCount(sizes);
  EXPECT_EQ(opt, 2u);
  EXPECT_LE(opt, ffd);
}

TEST(MinBinCount, ExactFlagSetOnFullSearch) {
  bool exact = false;
  minBinCount({0.6, 0.6, 0.3, 0.3}, 0, &exact);
  EXPECT_TRUE(exact);
}

TEST(MinBinCount, NodeBudgetReturnsUpperBound) {
  // With an absurd 1-node budget the search aborts to the FFD answer.
  std::vector<Size> sizes;
  Rng rng(7);
  for (int i = 0; i < 24; ++i) sizes.push_back(rng.uniform(0.2, 0.7));
  bool exact = true;
  std::size_t capped = minBinCount(sizes, 1, &exact);
  std::size_t ffd = firstFitDecreasingBinCount(sizes);
  EXPECT_LE(capped, ffd);
  EXPECT_GE(capped, fractionalBinLowerBound(sizes));
}

class MinBinCountProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinBinCountProperty, BracketsHold) {
  Rng rng(GetParam());
  std::vector<Size> sizes;
  int n = 4 + static_cast<int>(rng.uniformInt(0, 8));
  for (int i = 0; i < n; ++i) sizes.push_back(rng.uniform(0.05, 1.0));
  std::size_t opt = minBinCount(sizes);
  EXPECT_GE(opt, fractionalBinLowerBound(sizes));
  EXPECT_LE(opt, firstFitDecreasingBinCount(sizes));
  EXPECT_LE(opt, sizes.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinBinCountProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace cdbp
