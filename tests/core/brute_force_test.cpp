#include "core/brute_force.hpp"

#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(BruteForce, SingleItemUsesOneBin) {
  Instance inst = InstanceBuilder().add(0.7, 0, 5).build();
  auto result = bruteForceOptimal(inst);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->usage, 5.0);
  EXPECT_EQ(result->packing.numBins(), 1u);
}

TEST(BruteForce, PairsCompatibleItems) {
  Instance inst = InstanceBuilder().add(0.5, 0, 4).add(0.5, 0, 4).build();
  auto result = bruteForceOptimal(inst);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->usage, 4.0);
  EXPECT_EQ(result->packing.numBins(), 1u);
}

TEST(BruteForce, SeparatesIncompatibleItems) {
  Instance inst = InstanceBuilder().add(0.6, 0, 4).add(0.6, 0, 4).build();
  auto result = bruteForceOptimal(inst);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->usage, 8.0);
  EXPECT_EQ(result->packing.numBins(), 2u);
}

TEST(BruteForce, PrefersCoLocationThatShortensSpans) {
  // Greedy-by-arrival pairs items 0&1 (usage 10+... ), but the optimum
  // pairs the long items together and the short items together.
  Instance inst = InstanceBuilder()
                      .add(0.5, 0, 10)   // long
                      .add(0.5, 0, 1)    // short
                      .add(0.5, 0.5, 10)  // long
                      .add(0.5, 0.5, 1.5)  // short
                      .build();
  auto result = bruteForceOptimal(inst);
  ASSERT_TRUE(result.has_value());
  // Longs together: span 10; shorts together: span 1.5. Total 11.5.
  EXPECT_DOUBLE_EQ(result->usage, 11.5);
  EXPECT_EQ(result->packing.binOf(0), result->packing.binOf(2));
  EXPECT_EQ(result->packing.binOf(1), result->packing.binOf(3));
}

TEST(BruteForce, RefusesOversizedInstances) {
  InstanceBuilder builder;
  for (int i = 0; i < 15; ++i) builder.add(0.1, 0, 1);
  EXPECT_FALSE(bruteForceOptimal(builder.build(), 12).has_value());
}

TEST(BruteForce, EmptyInstance) {
  auto result = bruteForceOptimal(Instance{});
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->usage, 0.0);
}

class BruteForceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BruteForceProperty, OptimumIsFeasibleAndAboveLb3) {
  WorkloadSpec spec;
  spec.numItems = 6;
  spec.arrivalRate = 3.0;
  spec.mu = 6.0;
  Instance inst = generateWorkload(spec, GetParam());
  auto result = bruteForceOptimal(inst);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->packing.validate().has_value());
  EXPECT_GE(result->usage + 1e-9, lowerBounds(inst).ceilIntegral);
  EXPECT_DOUBLE_EQ(result->usage, result->packing.totalUsage());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForceProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace cdbp
