#include "core/interval.hpp"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(Interval, LengthOfRegularInterval) {
  Interval I{2.0, 5.5};
  EXPECT_DOUBLE_EQ(I.length(), 3.5);
  EXPECT_FALSE(I.empty());
}

TEST(Interval, EmptyWhenDegenerateOrInverted) {
  EXPECT_TRUE(Interval(3.0, 3.0).empty());
  EXPECT_TRUE(Interval(4.0, 2.0).empty());
  EXPECT_DOUBLE_EQ(Interval(4.0, 2.0).length(), 0.0);
}

TEST(Interval, ContainsIsHalfOpen) {
  Interval I{1.0, 2.0};
  EXPECT_TRUE(I.contains(1.0));   // left endpoint included
  EXPECT_TRUE(I.contains(1.5));
  EXPECT_FALSE(I.contains(2.0));  // right endpoint excluded
  EXPECT_FALSE(I.contains(0.999));
}

TEST(Interval, ContainsInterval) {
  Interval outer{0.0, 10.0};
  EXPECT_TRUE(outer.contains(Interval{2.0, 5.0}));
  EXPECT_TRUE(outer.contains(Interval{0.0, 10.0}));
  EXPECT_FALSE(outer.contains(Interval{-1.0, 5.0}));
  EXPECT_TRUE(outer.contains(Interval{5.0, 5.0}));  // empty contained anywhere
}

TEST(Interval, TouchingIntervalsDoNotOverlap) {
  EXPECT_FALSE(Interval(0, 1).overlaps(Interval(1, 2)));
  EXPECT_FALSE(Interval(1, 2).overlaps(Interval(0, 1)));
  EXPECT_TRUE(Interval(0, 1.5).overlaps(Interval(1, 2)));
}

TEST(Interval, IntersectProducesClippedInterval) {
  Interval a{0, 5};
  Interval b{3, 8};
  EXPECT_EQ(a.intersect(b), Interval(3, 5));
  EXPECT_TRUE(a.intersect(Interval(6, 7)).empty());
}

TEST(IntervalSet, SingleIntervalMeasure) {
  IntervalSet set;
  set.add({1, 4});
  EXPECT_DOUBLE_EQ(set.measure(), 3.0);
}

TEST(IntervalSet, DisjointIntervalsSumTheirLengths) {
  IntervalSet set;
  set.add({0, 1});
  set.add({5, 7});
  EXPECT_DOUBLE_EQ(set.measure(), 3.0);
  EXPECT_EQ(set.parts().size(), 2u);
}

TEST(IntervalSet, OverlappingIntervalsMerge) {
  IntervalSet set;
  set.add({0, 3});
  set.add({2, 5});
  EXPECT_DOUBLE_EQ(set.measure(), 5.0);
  EXPECT_EQ(set.parts().size(), 1u);
}

TEST(IntervalSet, TouchingIntervalsMergeIntoOnePart) {
  IntervalSet set;
  set.add({0, 2});
  set.add({2, 4});
  ASSERT_EQ(set.parts().size(), 1u);
  EXPECT_EQ(set.parts()[0], Interval(0, 4));
}

TEST(IntervalSet, AddAbsorbsMultipleExistingParts) {
  IntervalSet set;
  set.add({0, 1});
  set.add({2, 3});
  set.add({4, 5});
  set.add({0.5, 4.5});  // spans all three
  ASSERT_EQ(set.parts().size(), 1u);
  EXPECT_EQ(set.parts()[0], Interval(0, 5));
}

TEST(IntervalSet, InsertBetweenExistingParts) {
  IntervalSet set;
  set.add({0, 1});
  set.add({10, 11});
  set.add({5, 6});
  ASSERT_EQ(set.parts().size(), 3u);
  EXPECT_EQ(set.parts()[1], Interval(5, 6));
}

TEST(IntervalSet, EmptyIntervalIsIgnored) {
  IntervalSet set;
  set.add({3, 3});
  EXPECT_TRUE(set.empty());
  EXPECT_DOUBLE_EQ(set.measure(), 0.0);
}

TEST(IntervalSet, ContainsRespectsHalfOpenParts) {
  IntervalSet set;
  set.add({0, 1});
  set.add({2, 3});
  EXPECT_TRUE(set.contains(0.0));
  EXPECT_FALSE(set.contains(1.0));
  EXPECT_TRUE(set.contains(2.5));
  EXPECT_FALSE(set.contains(1.5));
}

TEST(IntervalSet, OverlapsQuery) {
  IntervalSet set;
  set.add({0, 1});
  set.add({5, 6});
  EXPECT_TRUE(set.overlaps({0.5, 5.5}));
  EXPECT_FALSE(set.overlaps({1, 5}));  // touches both, overlaps neither
  EXPECT_FALSE(set.overlaps({7, 8}));
}

TEST(IntervalSet, MinMaxEndpoints) {
  IntervalSet set;
  set.add({4, 5});
  set.add({1, 2});
  EXPECT_DOUBLE_EQ(set.min(), 1.0);
  EXPECT_DOUBLE_EQ(set.max(), 5.0);
}

TEST(IntervalSet, MergeWithAnotherSet) {
  IntervalSet a;
  a.add({0, 2});
  IntervalSet b;
  b.add({1, 3});
  b.add({10, 12});
  a.add(b);
  EXPECT_DOUBLE_EQ(a.measure(), 5.0);
  EXPECT_EQ(a.parts().size(), 2u);
}

TEST(IntervalSet, ConstructorNormalizesArbitraryInput) {
  IntervalSet set({{5, 7}, {0, 2}, {1, 6}});
  ASSERT_EQ(set.parts().size(), 1u);
  EXPECT_EQ(set.parts()[0], Interval(0, 7));
}

TEST(UnionMeasure, MatchesManualComputation) {
  EXPECT_DOUBLE_EQ(unionMeasure({{0, 2}, {1, 3}, {10, 11}}), 4.0);
  EXPECT_DOUBLE_EQ(unionMeasure({}), 0.0);
}

}  // namespace
}  // namespace cdbp
