#include "core/bin_timeline.hpp"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

Item item(ItemId id, Size s, Time a, Time d) { return Item(id, s, a, d); }

TEST(BinTimeline, EmptyBinFitsAnything) {
  BinTimeline bin;
  EXPECT_TRUE(bin.fits(item(0, 1.0, 0, 10)));
  EXPECT_TRUE(bin.empty());
  EXPECT_DOUBLE_EQ(bin.usage(), 0.0);
}

TEST(BinTimeline, FitsChecksWholeInterval) {
  BinTimeline bin;
  bin.add(item(0, 0.6, 5, 10));
  // Current level at time 0 is 0, but the candidate overlaps [5,10).
  EXPECT_FALSE(bin.fits(item(1, 0.6, 0, 6)));
  EXPECT_TRUE(bin.fits(item(1, 0.6, 0, 5)));   // half-open: touches only
  EXPECT_TRUE(bin.fits(item(1, 0.4, 0, 20)));  // 0.6+0.4 == capacity
}

TEST(BinTimeline, ExactCapacityFits) {
  BinTimeline bin;
  bin.add(item(0, 0.5, 0, 10));
  EXPECT_TRUE(bin.fits(item(1, 0.5, 0, 10)));
  bin.add(item(1, 0.5, 0, 10));
  EXPECT_FALSE(bin.fits(item(2, 0.01, 5, 6)));
}

TEST(BinTimeline, LevelEvolvesWithArrivalsAndDepartures) {
  BinTimeline bin;
  bin.add(item(0, 0.3, 0, 4));
  bin.add(item(1, 0.4, 2, 6));
  EXPECT_DOUBLE_EQ(bin.levelAt(1), 0.3);
  EXPECT_DOUBLE_EQ(bin.levelAt(3), 0.7);
  EXPECT_DOUBLE_EQ(bin.levelAt(5), 0.4);
  EXPECT_DOUBLE_EQ(bin.levelAt(6), 0.0);
  EXPECT_DOUBLE_EQ(bin.peakLevel(), 0.7);
}

TEST(BinTimeline, UsageIsSpanOfItems) {
  BinTimeline bin;
  bin.add(item(0, 0.3, 0, 2));
  bin.add(item(1, 0.3, 1, 3));
  bin.add(item(2, 0.3, 10, 12));  // gap between 3 and 10
  EXPECT_DOUBLE_EQ(bin.usage(), 3.0 + 2.0);
  EXPECT_EQ(bin.busyPeriods().parts().size(), 2u);
}

TEST(BinTimeline, MaxLevelOverWindow) {
  BinTimeline bin;
  bin.add(item(0, 0.5, 0, 10));
  bin.add(item(1, 0.25, 3, 5));
  EXPECT_DOUBLE_EQ(bin.maxLevelOver({0, 3}), 0.5);
  EXPECT_DOUBLE_EQ(bin.maxLevelOver({0, 10}), 0.75);
}

TEST(BinTimeline, TracksItemIdsInPlacementOrder) {
  BinTimeline bin;
  bin.add(item(5, 0.1, 0, 1));
  bin.add(item(2, 0.1, 0, 1));
  EXPECT_EQ(bin.items(), (std::vector<ItemId>{5, 2}));
}

TEST(BinTimeline, SequentialReuseAfterGap) {
  BinTimeline bin;
  bin.add(item(0, 1.0, 0, 1));
  // Bin is free again on [1, inf): a full-size item fits.
  EXPECT_TRUE(bin.fits(item(1, 1.0, 1, 2)));
  bin.add(item(1, 1.0, 1, 2));
  EXPECT_DOUBLE_EQ(bin.usage(), 2.0);
}

}  // namespace
}  // namespace cdbp
