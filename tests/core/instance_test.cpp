#include "core/instance.hpp"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

Instance threeItems() {
  return InstanceBuilder()
      .add(0.5, 0.0, 4.0)    // demand 2.0
      .add(0.25, 1.0, 3.0)   // demand 0.5
      .add(1.0, 6.0, 8.0)    // demand 2.0, disjoint in time
      .build();
}

TEST(Instance, BuilderAssignsDenseIds) {
  Instance inst = threeItems();
  ASSERT_EQ(inst.size(), 3u);
  for (ItemId i = 0; i < 3; ++i) EXPECT_EQ(inst[i].id, i);
}

TEST(Instance, RejectsNonPositiveSize) {
  EXPECT_THROW(InstanceBuilder().add(0.0, 0, 1).build(), InstanceError);
  EXPECT_THROW(InstanceBuilder().add(-0.5, 0, 1).build(), InstanceError);
}

TEST(Instance, RejectsOversizedItem) {
  EXPECT_THROW(InstanceBuilder().add(1.5, 0, 1).build(), InstanceError);
  EXPECT_NO_THROW(InstanceBuilder().add(1.0, 0, 1).build());
}

TEST(Instance, RejectsEmptyOrInvertedInterval) {
  EXPECT_THROW(InstanceBuilder().add(0.5, 2, 2).build(), InstanceError);
  EXPECT_THROW(InstanceBuilder().add(0.5, 3, 2).build(), InstanceError);
}

TEST(Instance, RejectsNonFiniteFields) {
  std::vector<Item> items;
  items.emplace_back(0, std::numeric_limits<double>::quiet_NaN(), 0.0, 1.0);
  EXPECT_THROW(Instance(std::move(items)), InstanceError);
  std::vector<Item> items2;
  items2.emplace_back(0, 0.5, 0.0, std::numeric_limits<double>::infinity());
  EXPECT_THROW(Instance(std::move(items2)), InstanceError);
}

TEST(Instance, DemandSumsTimeSpaceProducts) {
  EXPECT_DOUBLE_EQ(threeItems().demand(), 4.5);
}

TEST(Instance, SpanIsUnionMeasureNotExtent) {
  // Items cover [0,4) and [6,8): span 6, extent 8.
  EXPECT_DOUBLE_EQ(threeItems().span(), 6.0);
}

TEST(Instance, DurationStats) {
  Instance inst = threeItems();
  EXPECT_DOUBLE_EQ(inst.minDuration(), 2.0);
  EXPECT_DOUBLE_EQ(inst.maxDuration(), 4.0);
  EXPECT_DOUBLE_EQ(inst.durationRatio(), 2.0);
}

TEST(Instance, EmptyInstanceStats) {
  Instance inst;
  EXPECT_DOUBLE_EQ(inst.demand(), 0.0);
  EXPECT_DOUBLE_EQ(inst.span(), 0.0);
  EXPECT_DOUBLE_EQ(inst.durationRatio(), 1.0);
  EXPECT_TRUE(inst.eventTimes().empty());
}

TEST(Instance, EventTimesAreSortedAndDeduplicated) {
  Instance inst = InstanceBuilder()
                      .add(0.1, 0, 2)
                      .add(0.1, 2, 4)  // shares endpoint 2
                      .build();
  std::vector<Time> events = inst.eventTimes();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0], 0.0);
  EXPECT_DOUBLE_EQ(events[1], 2.0);
  EXPECT_DOUBLE_EQ(events[2], 4.0);
}

TEST(Instance, TotalSizeAtRespectsHalfOpenIntervals) {
  Instance inst = threeItems();
  EXPECT_DOUBLE_EQ(inst.totalSizeAt(0.0), 0.5);
  EXPECT_DOUBLE_EQ(inst.totalSizeAt(1.5), 0.75);
  EXPECT_DOUBLE_EQ(inst.totalSizeAt(3.0), 0.5);   // item 1 departed at 3
  EXPECT_DOUBLE_EQ(inst.totalSizeAt(4.0), 0.0);   // item 0 departed at 4
  EXPECT_DOUBLE_EQ(inst.totalSizeAt(7.0), 1.0);
}

TEST(Instance, ActiveAtListsIds) {
  Instance inst = threeItems();
  EXPECT_EQ(inst.activeAt(1.5), (std::vector<ItemId>{0, 1}));
  EXPECT_EQ(inst.activeAt(5.0), std::vector<ItemId>{});
}

TEST(Instance, PeakStatistics) {
  Instance inst = threeItems();
  EXPECT_EQ(inst.maxConcurrentItems(), 2u);
  EXPECT_DOUBLE_EQ(inst.peakTotalSize(), 1.0);
}

TEST(Instance, SortedByArrivalIsStableOnTies) {
  Instance inst = InstanceBuilder()
                      .add(0.3, 5, 6)
                      .add(0.3, 0, 1)
                      .add(0.3, 0, 2)
                      .build();
  std::vector<Item> order = inst.sortedByArrival();
  EXPECT_EQ(order[0].id, 1u);
  EXPECT_EQ(order[1].id, 2u);
  EXPECT_EQ(order[2].id, 0u);
}

TEST(Instance, FilterKeepsSelectedAndRenumbers) {
  Instance inst = threeItems();
  Instance filtered = inst.filter({true, false, true});
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].id, 0u);
  EXPECT_DOUBLE_EQ(filtered[0].size, 0.5);
  EXPECT_EQ(filtered[1].id, 1u);
  EXPECT_DOUBLE_EQ(filtered[1].size, 1.0);
}

TEST(Item, DerivedAccessors) {
  Item r(7, 0.25, 2.0, 5.0);
  EXPECT_DOUBLE_EQ(r.arrival(), 2.0);
  EXPECT_DOUBLE_EQ(r.departure(), 5.0);
  EXPECT_DOUBLE_EQ(r.duration(), 3.0);
  EXPECT_DOUBLE_EQ(r.demand(), 0.75);
  EXPECT_TRUE(r.activeAt(2.0));
  EXPECT_FALSE(r.activeAt(5.0));
}

}  // namespace
}  // namespace cdbp
