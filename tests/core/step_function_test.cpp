#include "core/step_function.hpp"

#include <gtest/gtest.h>

#include "core/epsilon.hpp"
#include "util/rng.hpp"

namespace cdbp {
namespace {

TEST(StepFunction, ZeroEverywhereInitially) {
  StepFunction f;
  EXPECT_DOUBLE_EQ(f.valueAt(0), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(), 0.0);
  EXPECT_DOUBLE_EQ(f.maxValue(), 0.0);
  EXPECT_TRUE(f.empty());
}

TEST(StepFunction, SingleRangeAdd) {
  StepFunction f;
  f.add({1, 3}, 0.5);
  EXPECT_DOUBLE_EQ(f.valueAt(0.999), 0.0);
  EXPECT_DOUBLE_EQ(f.valueAt(1), 0.5);
  EXPECT_DOUBLE_EQ(f.valueAt(2.999), 0.5);
  EXPECT_DOUBLE_EQ(f.valueAt(3), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(), 1.0);
}

TEST(StepFunction, OverlappingAddsStack) {
  StepFunction f;
  f.add({0, 4}, 1.0);
  f.add({2, 6}, 2.0);
  EXPECT_DOUBLE_EQ(f.valueAt(1), 1.0);
  EXPECT_DOUBLE_EQ(f.valueAt(3), 3.0);
  EXPECT_DOUBLE_EQ(f.valueAt(5), 2.0);
  EXPECT_DOUBLE_EQ(f.integral(), 4.0 + 8.0);
}

TEST(StepFunction, NegativeDeltaRemoves) {
  StepFunction f;
  f.add({0, 10}, 1.0);
  f.add({3, 7}, -1.0);
  EXPECT_DOUBLE_EQ(f.valueAt(5), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(), 6.0);
  EXPECT_DOUBLE_EQ(f.supportMeasure(kSizeEps), 6.0);
}

TEST(StepFunction, MaxOverWindowsAndWholeRange) {
  StepFunction f;
  f.add({0, 2}, 1.0);
  f.add({1, 3}, 2.0);
  EXPECT_DOUBLE_EQ(f.maxOver({0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(f.maxOver({0, 3}), 3.0);
  EXPECT_DOUBLE_EQ(f.maxOver({2.5, 5}), 2.0);
  EXPECT_DOUBLE_EQ(f.maxOver({10, 20}), 0.0);
  EXPECT_DOUBLE_EQ(f.maxValue(), 3.0);
}

TEST(StepFunction, MaxOverIsExclusiveOfRightEndpoint) {
  StepFunction f;
  f.add({5, 6}, 4.0);
  // [0,5) never sees the bump that starts exactly at 5.
  EXPECT_DOUBLE_EQ(f.maxOver({0, 5}), 0.0);
  EXPECT_DOUBLE_EQ(f.maxOver({0, 5.001}), 4.0);
}

TEST(StepFunction, MinOverWindow) {
  StepFunction f;
  f.add({0, 10}, 2.0);
  f.add({4, 6}, -1.5);
  EXPECT_DOUBLE_EQ(f.minOver({0, 10}), 0.5);
  EXPECT_DOUBLE_EQ(f.minOver({0, 4}), 2.0);
  EXPECT_DOUBLE_EQ(f.minOver({20, 30}), 0.0);
}

TEST(StepFunction, IntegralOverSubrange) {
  StepFunction f;
  f.add({0, 4}, 2.0);
  EXPECT_DOUBLE_EQ(f.integralOver({1, 3}), 4.0);
  EXPECT_DOUBLE_EQ(f.integralOver({3, 10}), 2.0);
  EXPECT_DOUBLE_EQ(f.integralOver({-5, 0}), 0.0);
  EXPECT_DOUBLE_EQ(f.integralOver({2, 2}), 0.0);
}

TEST(StepFunction, CeilIntegralRoundsUpFractionalLevels) {
  StepFunction f;
  f.add({0, 1}, 0.3);   // ceil -> 1
  f.add({2, 3}, 1.2);   // ceil -> 2
  EXPECT_DOUBLE_EQ(f.ceilIntegral(kSizeEps), 1.0 + 2.0);
}

TEST(StepFunction, CeilIntegralSnapsNearIntegers) {
  StepFunction f;
  // Sum of ten 0.1 additions is 0.9999999999999999 in binary; the ceil
  // integral must still count it as 1, not 1 rounded from above.
  for (int i = 0; i < 10; ++i) f.add({0, 1}, 0.1);
  EXPECT_DOUBLE_EQ(f.ceilIntegral(kSizeEps), 1.0);
  // And 2.0000000001-style noise must not become 3.
  StepFunction g;
  g.add({0, 1}, 2.0 + 1e-13);
  EXPECT_DOUBLE_EQ(g.ceilIntegral(kSizeEps), 2.0);
}

TEST(StepFunction, SupportMeasureIgnoresZeroGaps) {
  StepFunction f;
  f.add({0, 1}, 1.0);
  f.add({2, 4}, 0.5);
  EXPECT_DOUBLE_EQ(f.supportMeasure(kSizeEps), 3.0);
}

TEST(StepFunction, SegmentsSkipZeroRegions) {
  StepFunction f;
  f.add({0, 1}, 1.0);
  f.add({2, 3}, 2.0);
  auto segs = f.segments();
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].interval, Interval(0, 1));
  EXPECT_DOUBLE_EQ(segs[0].value, 1.0);
  EXPECT_EQ(segs[1].interval, Interval(2, 3));
  EXPECT_DOUBLE_EQ(segs[1].value, 2.0);
}

TEST(StepFunction, NormalizeDropsRedundantBreakpoints) {
  StepFunction f;
  f.add({0, 2}, 1.0);
  f.add({2, 4}, 1.0);  // creates a breakpoint at 2 with equal values
  f.normalize();
  EXPECT_EQ(f.breakpoints().size(), 2u);
  EXPECT_DOUBLE_EQ(f.valueAt(1), 1.0);
  EXPECT_DOUBLE_EQ(f.valueAt(3), 1.0);
  EXPECT_DOUBLE_EQ(f.integral(), 4.0);
}

TEST(StepFunction, EmptyIntervalAddIsNoOp) {
  StepFunction f;
  f.add({5, 5}, 3.0);
  f.add({7, 6}, 3.0);
  EXPECT_TRUE(f.empty());
}

// Differential test: StepFunction against a brute-force dense evaluation.
TEST(StepFunction, RandomizedAgainstBruteForce) {
  Rng rng(20160711);
  for (int trial = 0; trial < 20; ++trial) {
    StepFunction f;
    struct Op {
      double lo, hi, delta;
    };
    std::vector<Op> ops;
    for (int i = 0; i < 30; ++i) {
      double lo = rng.uniform(0, 100);
      double hi = lo + rng.uniform(0, 20);
      double delta = rng.uniform(-1, 1);
      ops.push_back({lo, hi, delta});
      f.add({lo, hi}, delta);
    }
    for (int probe = 0; probe < 50; ++probe) {
      double t = rng.uniform(-5, 125);
      double expected = 0;
      for (const Op& op : ops) {
        if (op.lo <= t && t < op.hi) expected += op.delta;
      }
      EXPECT_NEAR(f.valueAt(t), expected, 1e-9) << "t=" << t;
    }
    // Integral cross-check via midpoint sampling of elementary segments.
    double expectedIntegral = 0;
    for (const Op& op : ops) expectedIntegral += op.delta * (op.hi - op.lo);
    EXPECT_NEAR(f.integral(), expectedIntegral, 1e-6);
  }
}

}  // namespace
}  // namespace cdbp
