#include "core/lower_bounds.hpp"

#include <gtest/gtest.h>

#include "workload/generators.hpp"

namespace cdbp {
namespace {

TEST(LowerBounds, SingleItem) {
  Instance inst = InstanceBuilder().add(0.5, 0, 2).build();
  LowerBounds lb = lowerBounds(inst);
  EXPECT_DOUBLE_EQ(lb.demand, 1.0);
  EXPECT_DOUBLE_EQ(lb.span, 2.0);
  EXPECT_DOUBLE_EQ(lb.ceilIntegral, 2.0);  // ceil(0.5) = 1 bin for 2 units
  EXPECT_DOUBLE_EQ(lb.best(), 2.0);
}

TEST(LowerBounds, CeilIntegralCountsBinsPerSegment) {
  // Three 0.6-items overlapping on [0,1): S(t)=1.8 -> 2 bins there.
  Instance inst = InstanceBuilder()
                      .add(0.6, 0, 1)
                      .add(0.6, 0, 1)
                      .add(0.6, 0, 2)
                      .build();
  LowerBounds lb = lowerBounds(inst);
  EXPECT_DOUBLE_EQ(lb.ceilIntegral, 2.0 * 1.0 + 1.0 * 1.0);
  EXPECT_DOUBLE_EQ(lb.span, 2.0);
  EXPECT_NEAR(lb.demand, 0.6 + 0.6 + 1.2, 1e-12);
}

TEST(LowerBounds, Proposition3DominatesOnDenseLoad) {
  // Demand chart: S(t) = 1.1 on [0,10): LB3 = 20 > demand 11 > span 10.
  InstanceBuilder builder;
  for (int i = 0; i < 11; ++i) builder.add(0.1, 0, 10);
  LowerBounds lb = lowerBounds(builder.build());
  EXPECT_NEAR(lb.demand, 11.0, 1e-9);
  EXPECT_DOUBLE_EQ(lb.span, 10.0);
  EXPECT_NEAR(lb.ceilIntegral, 20.0, 1e-9);
  EXPECT_NEAR(lb.best(), lb.ceilIntegral, 1e-9);
}

TEST(LowerBounds, DisjointItemsSpanEqualsCeilIntegral) {
  Instance inst = InstanceBuilder().add(0.2, 0, 1).add(0.9, 5, 7).build();
  LowerBounds lb = lowerBounds(inst);
  EXPECT_DOUBLE_EQ(lb.span, 3.0);
  EXPECT_DOUBLE_EQ(lb.ceilIntegral, 3.0);
}

TEST(LowerBounds, EmptyInstanceIsAllZero) {
  LowerBounds lb = lowerBounds(Instance{});
  EXPECT_DOUBLE_EQ(lb.best(), 0.0);
}

TEST(LowerBounds, TotalSizeProfileMatchesInstanceQueries) {
  Instance inst = InstanceBuilder().add(0.4, 0, 3).add(0.5, 1, 2).build();
  StepFunction profile = totalSizeProfile(inst);
  for (Time t : {0.5, 1.5, 2.5, 3.5}) {
    EXPECT_NEAR(profile.valueAt(t), inst.totalSizeAt(t), 1e-12) << t;
  }
}

// Proposition ordering LB1, LB2 <= LB3 on random workloads.
class LowerBoundOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LowerBoundOrdering, CeilIntegralDominates) {
  WorkloadSpec spec;
  spec.numItems = 200;
  spec.mu = 8.0;
  Instance inst = generateWorkload(spec, GetParam());
  LowerBounds lb = lowerBounds(inst);
  EXPECT_LE(lb.demand, lb.ceilIntegral + 1e-6);
  EXPECT_LE(lb.span, lb.ceilIntegral + 1e-6);
  EXPECT_GT(lb.ceilIntegral, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerBoundOrdering,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

}  // namespace
}  // namespace cdbp
