#include "core/epsilon.hpp"

#include <gtest/gtest.h>

namespace cdbp {
namespace {

TEST(Epsilon, LeqAcceptsWithinTolerance) {
  EXPECT_TRUE(leq(1.0, 1.0));
  EXPECT_TRUE(leq(1.0 + 0.5e-9, 1.0));
  EXPECT_FALSE(leq(1.0 + 2e-9, 1.0));
  EXPECT_TRUE(leq(0.5, 1.0));
}

TEST(Epsilon, LtRequiresClearSeparation) {
  EXPECT_TRUE(lt(0.5, 1.0));
  EXPECT_FALSE(lt(1.0, 1.0));
  EXPECT_FALSE(lt(1.0 - 0.5e-9, 1.0));
  EXPECT_TRUE(lt(1.0 - 2e-9, 1.0));
}

TEST(Epsilon, ApproxEq) {
  EXPECT_TRUE(approxEq(1.0, 1.0 + 0.5e-9));
  EXPECT_FALSE(approxEq(1.0, 1.0 + 2e-9));
}

TEST(Epsilon, LeqAndLtAreComplementaryUpToTies) {
  for (double a : {0.1, 0.9999999995, 1.0, 1.0000000005, 1.1}) {
    // lt(a, b) implies leq(a, b); both can hold, never neither-with-gap.
    if (lt(a, 1.0)) {
      EXPECT_TRUE(leq(a, 1.0)) << a;
    }
  }
}

TEST(Epsilon, FitsCapacityAtBoundary) {
  EXPECT_TRUE(fitsCapacity(0.5, 0.5));
  // Ten tenths accumulate binary noise but must still "fit".
  double level = 0;
  for (int i = 0; i < 9; ++i) level += 0.1;
  EXPECT_TRUE(fitsCapacity(level, 0.1));
  EXPECT_FALSE(fitsCapacity(0.95, 0.1));
}

TEST(Epsilon, CustomToleranceParameter) {
  EXPECT_TRUE(leq(1.05, 1.0, 0.1));
  EXPECT_FALSE(lt(1.05, 1.1, 0.1));
  EXPECT_TRUE(approxEq(1.0, 1.05, 0.1));
}

}  // namespace
}  // namespace cdbp
